"""Streaming smoke: every policy × every arrival process, tiny streams.

CI's ``streaming-smoke`` job runs this script on each push.  For each
(policy, process) pair it starts a session on a tiny workload, suspends
it mid-stream, JSON round-trips the checkpoint, resumes in-process, and
checks the resumed hires equal an uninterrupted run's — the end-to-end
contract of the online runtime, at smoke cost (a few seconds total).

Each pair then re-runs **sharded** (S=2): one shard is drained, the
other suspended mid-stream, the manifest checkpoint JSON round-trips,
and the resumed session's merged hires must equal an uninterrupted
sharded run's — the same contract lifted over the sharded runtime,
where every shard checkpoints independently.

Each pair then runs the **reshard** cells: the suspended manifest hops
2 -> 4 -> 2 and 4 -> 2 -> 4 through :func:`reshard_session` (no
progress at the intermediate width, salt kept) before resuming, and
the resumed hires must still equal the uninterrupted run's — the
partition-map round-trip identity, as an end-to-end smoke.

With ``--soak``, a long-stream scaling cell also runs: bursty arrivals
over an additive utility at n = 10^4 / 10^5 / 10^6, suspended halfway.
The checkpoint must stay O(selected) — its byte size and the
parse-plus-restore wall time at n = 10^6 must land within 2x of the
n = 10^4 cell's (workload and source construction sit outside the
timer; they are O(n) for any runner).  The curve is written to
``--soak-output`` (committed as ``BENCH_PR6.json``).

With ``--serve``, a multi-tenant serving cell also runs: 100+
concurrent tenant sessions (mixed policies, families, arrival
processes, one sharded tenant) are multiplexed through one
:class:`~repro.online.serving.ServingLoop` and every tenant's hires
and oracle-call count must be bit-identical to running that tenant
alone.  Throughput (arrivals/second, fleet-wide) and idle-checkpoint
latency (from a second, paced cell that parks tenants between
batches) are written to ``--serve-output`` (committed as
``BENCH_PR7.json``).

Usage::

    PYTHONPATH=src python benchmarks/streaming_smoke.py [--output smoke.json]
    PYTHONPATH=src python benchmarks/streaming_smoke.py --soak \
        --soak-output BENCH_PR6.json
    PYTHONPATH=src python benchmarks/streaming_smoke.py --serve \
        --serve-output BENCH_PR7.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core.functions import AdditiveFunction
from repro.online.arrivals import (
    arrival_process_names,
    build_arrival_schedule,
    build_arrival_source,
)
from repro.online.checkpoint import make_checkpoint, resume_run
from repro.online.driver import OnlineRun
from repro.online.policies import SegmentedSubmodularPolicy
from repro.online.session import (
    SESSION_POLICIES,
    build_workload,
    reshard_session,
    resume_sharded_session,
    resume_session,
    start_session,
    start_sharded_session,
)

N, K, SEED, SHARDS = 16, 3, 20100612, 2


def _process_params(process: str) -> dict:
    """Per-process stream parameters; replay needs a recorded payload."""
    if process != "replay":
        return {}
    fn, _ = build_workload({"family": "additive", "n": N, "seed": SEED})
    recorded = build_arrival_schedule("bursty", fn, 99, mean_batch=3.0)
    return {"payload": recorded.payload()}


def run_pair(policy: str, process: str) -> dict:
    kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                  process=process, process_params=_process_params(process))
    t0 = time.perf_counter()
    oneshot = start_session(**kwargs).advance()
    selected = sorted(map(str, oneshot.run.result().selected))

    suspended = start_session(**kwargs).advance(N // 2)
    checkpoint = json.loads(json.dumps(suspended.checkpoint(), allow_nan=False))
    resumed = resume_session(checkpoint).advance()
    resumed_selected = sorted(map(str, resumed.run.result().selected))

    ok = resumed.finished and resumed_selected == selected
    return {
        "policy": policy,
        "process": process,
        "shards": 1,
        "ok": ok,
        "selected": selected,
        "resumed_selected": resumed_selected,
        "oracle_calls": oneshot.summary()["oracle_calls"],
        "wall_time": time.perf_counter() - t0,
    }


def run_sharded_pair(policy: str, process: str) -> dict:
    """S=2 round: drain shard 0, suspend shard 1 mid-stream, resume."""
    kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                  process=process, process_params=_process_params(process),
                  shards=SHARDS)
    t0 = time.perf_counter()
    oneshot = start_sharded_session(**kwargs).advance()
    summary = oneshot.summary()
    selected = sorted(map(str, summary["selected"]))

    suspended = start_sharded_session(**kwargs)
    suspended.advance_shard(0)
    suspended.advance_shard(1, max(1, suspended.run.runs[1].n // 2))
    checkpoint = json.loads(json.dumps(suspended.checkpoint(), allow_nan=False))
    resumed = resume_sharded_session(checkpoint).advance()
    resumed_selected = sorted(map(str, resumed.summary()["selected"]))

    # Feasibility: the merged set respects the policy's constraint —
    # the reduced unit-knapsack load for the knapsack rule, the hire
    # budget for everything else.
    merged = resumed.summary()["selected"]
    if policy == "knapsack":
        _, weights = build_workload(resumed.recipe)
        feasible = sum(weights[e] for e in merged) <= 1.0 + 1e-9
    else:
        feasible = len(merged) <= (1 if policy == "classical" else K)
    ok = resumed.finished and resumed_selected == selected and feasible
    return {
        "policy": policy,
        "process": process,
        "shards": SHARDS,
        "ok": ok,
        "selected": selected,
        "resumed_selected": resumed_selected,
        "oracle_calls": summary["oracle_calls"],
        "wall_time": time.perf_counter() - t0,
    }


def _reshard_round_trip(policy: str, process: str, shards: int,
                        hop_to: int) -> bool:
    """Suspend at n//2, hop S -> S' -> S, resume; hires must match."""
    kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                  process=process, process_params=_process_params(process),
                  shards=shards)
    straight = start_sharded_session(**kwargs).advance()
    selected = sorted(map(str, straight.summary()["selected"]))

    suspended = start_sharded_session(**kwargs).advance(N // 2)
    checkpoint = json.loads(json.dumps(suspended.checkpoint(), allow_nan=False))
    hopped = reshard_session(reshard_session(checkpoint, hop_to), shards)
    resumed = resume_sharded_session(hopped).advance()
    resumed_selected = sorted(map(str, resumed.summary()["selected"]))
    return resumed.finished and resumed_selected == selected


def run_reshard_pair(policy: str, process: str) -> dict:
    """Reshard cells: 2 -> 4 -> 2 and 4 -> 2 -> 4 vs straight-through.

    A suspended manifest is re-partitioned to a new lane count and back
    (no progress at the intermediate width, salt kept), then resumed to
    completion; the resumed hires must equal an uninterrupted sharded
    run's — the identity round trip of the versioned partition map,
    lifted over every policy x arrival process.
    """
    t0 = time.perf_counter()
    grow_ok = _reshard_round_trip(policy, process, SHARDS, 2 * SHARDS)
    shrink_ok = _reshard_round_trip(policy, process, 2 * SHARDS, SHARDS)
    return {
        "policy": policy,
        "process": process,
        "shards": f"{SHARDS}>{2 * SHARDS}>{SHARDS}"
                  f"|{2 * SHARDS}>{SHARDS}>{2 * SHARDS}",
        "ok": grow_ok and shrink_ok,
        "grow_round_trip_ok": grow_ok,
        "shrink_round_trip_ok": shrink_ok,
        "wall_time": time.perf_counter() - t0,
    }


SOAK_NS = (10_000, 100_000, 1_000_000)


def run_soak_cell(n: int, *, verify: bool = False) -> dict:
    """One long-stream cell: suspend at n//2, measure checkpoint cost.

    Workload, source, and policy binding are built outside the timed
    region — they are O(n) for *any* runner (an uninterrupted run pays
    the same evaluator-kernel precompute) — so the O(selected) claim is
    about the checkpoint itself: its byte size and the JSON-parse +
    :meth:`OnlineRun.restore` time.
    """
    values = {i: float((7 * i) % 101 + 1) for i in range(n)}

    def fresh_run():
        fn = AdditiveFunction(values)
        src = build_arrival_source("bursty", fn, SEED, mean_batch=8.0)
        return OnlineRun(fn, src, SegmentedSubmodularPolicy(K))

    run = fresh_run()
    t0 = time.perf_counter()
    run.run(n // 2)
    suspend_seconds = time.perf_counter() - t0
    text = json.dumps(make_checkpoint(run), sort_keys=True, allow_nan=False)

    # Parse + restore, best of three to shave timer noise.
    resume_seconds = float("inf")
    for _ in range(3):
        resumed = fresh_run()
        t0 = time.perf_counter()
        resumed.restore(json.loads(text))
        resume_seconds = min(resume_seconds, time.perf_counter() - t0)
    assert resumed.cursor == n // 2

    ok = True
    if verify:  # pin correctness on the cheap cell only
        want = fresh_run().run().result().selected
        through_resume_run = resume_run(
            json.loads(text), AdditiveFunction(values)
        )
        ok = (resumed.run().result().selected == want
              and through_resume_run.run().result().selected == want)
    return {
        "n": n,
        "ok": ok,
        "checkpoint_bytes": len(text),
        "hired": len(resumed.decisions),
        "suspend_seconds": suspend_seconds,
        "resume_seconds": resume_seconds,
    }


def run_soak(output: str | None) -> int:
    cells = [
        run_soak_cell(n, verify=(n == min(SOAK_NS))) for n in SOAK_NS
    ]
    for c in cells:
        print(f"soak n={c['n']:>9,} ck={c['checkpoint_bytes']:>6}B "
              f"hired={c['hired']} suspend={c['suspend_seconds']:.3f}s "
              f"resume={c['resume_seconds'] * 1e3:.2f}ms")
    small = next(c for c in cells if c["n"] == min(SOAK_NS))
    big = next(c for c in cells if c["n"] == max(SOAK_NS))
    # 1 ms floor keeps the ratio meaningful when both resumes are
    # sub-millisecond.
    flat_bytes = big["checkpoint_bytes"] <= 2 * small["checkpoint_bytes"]
    flat_time = (big["resume_seconds"]
                 <= 2 * max(small["resume_seconds"], 1e-3))
    ok = flat_bytes and flat_time and all(c["ok"] for c in cells)
    payload = {
        "format": "repro-bench-pr/1",
        "benchmark": "streaming-soak",
        "policy": "monotone",
        "process": "bursty",
        "suspend_at": "n//2",
        "cells": cells,
        "flat_checkpoint_bytes": flat_bytes,
        "flat_resume_seconds": flat_time,
        "note": ("checkpoint bytes and parse+restore wall time at n=10^6 "
                 "within 2x of n=10^4; utility/source/policy binding "
                 "(O(n) for any runner, paid equally by an uninterrupted "
                 "run) excluded from the timed region"),
    }
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not ok:
        print("streaming soak: checkpoint cost is not flat in n",
              file=sys.stderr)
        return 1
    print(f"streaming soak: O(selected) holds across n={min(SOAK_NS):,} "
          f"... {max(SOAK_NS):,}")
    return 0


SERVE_FLEET = {
    "defaults": {"family": "additive", "n": 48, "k": 4, "process": "uniform"},
    "tenants": [
        {"id": "robust-coverage", "policy": "robust", "family": "coverage",
         "n": 36, "aux": 24, "seed": 41},
        {"id": "knapsack", "policy": "knapsack", "n": 40, "seed": 42},
        {"id": "nonmono-poisson", "policy": "nonmonotone",
         "process": "poisson", "n": 40, "seed": 43},
        {"id": "classical-sorted", "policy": "classical",
         "process": "sorted_desc", "n": 32, "seed": 44},
        {"id": "sharded", "policy": "monotone", "shards": 2, "n": 44,
         "seed": 45},
        {"id": "bursty", "policy": "monotone", "process": "bursty",
         "process_params": {"mean_batch": 4}, "seed": 46},
    ],
    "replicate": {"count": 102, "id_format": "tenant-{index:04d}",
                  "seed_start": 1000, "policy": "monotone"},
}


def run_serve(output: str | None) -> int:
    """100+ tenants through one ServingLoop, bit-identical to sequential."""
    import tempfile

    from repro.online.checkpoint import IdleCheckpointPolicy
    from repro.online.serving import ServingLoop, load_tenant_specs
    from repro.online.session import WorkloadCache

    specs = load_tenant_specs(SERVE_FLEET)

    # Sequential baseline: each tenant alone, summed wall time.
    t0 = time.perf_counter()
    baseline = {}
    for spec in specs:
        session = spec.start(WorkloadCache())
        session.advance()
        summary = session.summary()
        baseline[spec.tenant_id] = {
            "selected": sorted(map(str, summary["selected"])),
            "value": summary["value"],
            "oracle_calls": summary["oracle_calls"],
        }
    sequential_seconds = time.perf_counter() - t0

    # Concurrent cell: the whole fleet through one loop, shared cache.
    loop = ServingLoop(specs, workload_cache=WorkloadCache())
    report = loop.serve()
    mismatches = []
    for spec in specs:
        want = baseline[spec.tenant_id]
        got = report["tenants"][spec.tenant_id]
        same = (got["finished"]
                and sorted(map(str, got["selected"])) == want["selected"]
                and abs(got["value"] - want["value"]) < 1e-9
                and got["oracle_calls"] == want["oracle_calls"])
        if not same:
            mismatches.append(spec.tenant_id)
    totals = report["totals"]

    # Idle-checkpoint cell: a paced sub-fleet parks between batches so
    # the monitor checkpoints quiescent tenants mid-serve.
    idle_specs = specs[:12]
    with tempfile.TemporaryDirectory() as root:
        idle_loop = ServingLoop(
            idle_specs,
            checkpoint_root=root,
            idle_policy=IdleCheckpointPolicy(idle_seconds=0.01),
            pace_seconds=0.02,
            workload_cache=WorkloadCache(),
        )
        idle_report = idle_loop.serve()
    latency = idle_report.get("checkpoint_latency") or {}

    ok = (not mismatches
          and totals["tenants"] >= 100
          and idle_report["totals"]["idle_checkpoints"] > 0)
    print(f"serve: {totals['tenants']} tenants, "
          f"{totals['arrivals']} arrivals in {totals['wall_seconds']:.3f}s "
          f"({totals['arrivals_per_second']:.0f} arrivals/s; "
          f"sequential {sequential_seconds:.3f}s)")
    print(f"serve: idle cell wrote "
          f"{idle_report['totals']['idle_checkpoints']} mid-serve "
          f"checkpoints, latency mean "
          f"{latency.get('mean_seconds', 0) * 1e3:.2f}ms "
          f"max {latency.get('max_seconds', 0) * 1e3:.2f}ms")
    payload = {
        "format": "repro-bench-pr/1",
        "benchmark": "serving",
        "tenants": totals["tenants"],
        "bit_identical_to_sequential": not mismatches,
        "mismatched_tenants": mismatches,
        "arrivals": totals["arrivals"],
        "decisions": totals["decisions"],
        "oracle_calls": totals["oracle_calls"],
        "wall_seconds": totals["wall_seconds"],
        "arrivals_per_second": totals["arrivals_per_second"],
        "sequential_seconds": sequential_seconds,
        "max_in_flight": totals["max_in_flight"],
        "workload_cache": report["workload_cache"],
        "idle_cell": {
            "tenants": idle_report["totals"]["tenants"],
            "idle_checkpoints": idle_report["totals"]["idle_checkpoints"],
            "checkpoint_latency": latency,
            "pace_seconds": 0.02,
            "idle_seconds": 0.01,
        },
        "note": ("every tenant's hires and oracle-call count equal a "
                 "standalone run of the same spec; throughput measured "
                 "on the unpaced 100+-tenant fleet, idle-checkpoint "
                 "latency on a paced 12-tenant sub-fleet"),
    }
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if not ok:
        print("serving bench: " + (
            f"{len(mismatches)} tenants diverged from sequential: "
            f"{mismatches[:5]}" if mismatches else
            "fleet too small or no idle checkpoints"), file=sys.stderr)
        return 1
    print(f"serving bench: {totals['tenants']} concurrent tenants "
          "bit-identical to sequential")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write results JSON here")
    parser.add_argument("--soak", action="store_true",
                        help="also run the long-stream scaling cells")
    parser.add_argument("--soak-output", default=None,
                        help="write the soak scaling curve JSON here")
    parser.add_argument("--serve", action="store_true",
                        help="also run the multi-tenant serving cell")
    parser.add_argument("--serve-output", default=None,
                        help="write the serving bench JSON here")
    args = parser.parse_args(argv)

    results = [
        runner(policy, process)
        for policy in SESSION_POLICIES
        for process in arrival_process_names()
        for runner in (run_pair, run_sharded_pair, run_reshard_pair)
    ]
    failures = [r for r in results if not r["ok"]]
    for r in results:
        status = "ok " if r["ok"] else "FAIL"
        detail = (f"hired={len(r['selected'])} calls={r['oracle_calls']}"
                  if "selected" in r else "reshard round trips")
        print(f"{status} {r['policy']:<12} {r['process']:<15} "
              f"S={r['shards']} {detail}")
    payload = {
        "pairs": len(results),
        "failures": len(failures),
        "results": results,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if failures:
        print(f"streaming smoke: {len(failures)} failing pairs", file=sys.stderr)
        return 1
    print(f"streaming smoke: all {len(results)} policy x process x shard "
          "cells ok")
    if args.soak:
        code = run_soak(args.soak_output)
        if code:
            return code
    if args.serve:
        return run_serve(args.serve_output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
