"""Streaming smoke: every policy × every arrival process, tiny streams.

CI's ``streaming-smoke`` job runs this script on each push.  For each
(policy, process) pair it starts a session on a tiny workload, suspends
it mid-stream, JSON round-trips the checkpoint, resumes in-process, and
checks the resumed hires equal an uninterrupted run's — the end-to-end
contract of the online runtime, at smoke cost (a few seconds total).

Each pair then re-runs **sharded** (S=2): one shard is drained, the
other suspended mid-stream, the manifest checkpoint JSON round-trips,
and the resumed session's merged hires must equal an uninterrupted
sharded run's — the same contract lifted over the sharded runtime,
where every shard checkpoints independently.

Usage::

    PYTHONPATH=src python benchmarks/streaming_smoke.py [--output smoke.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.online.arrivals import arrival_process_names
from repro.online.session import (
    SESSION_POLICIES,
    build_workload,
    resume_sharded_session,
    resume_session,
    start_session,
    start_sharded_session,
)

N, K, SEED, SHARDS = 16, 3, 20100612, 2


def run_pair(policy: str, process: str) -> dict:
    kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                  process=process)
    t0 = time.perf_counter()
    oneshot = start_session(**kwargs).advance()
    selected = sorted(map(str, oneshot.run.result().selected))

    suspended = start_session(**kwargs).advance(N // 2)
    checkpoint = json.loads(json.dumps(suspended.checkpoint(), allow_nan=False))
    resumed = resume_session(checkpoint).advance()
    resumed_selected = sorted(map(str, resumed.run.result().selected))

    ok = resumed.finished and resumed_selected == selected
    return {
        "policy": policy,
        "process": process,
        "shards": 1,
        "ok": ok,
        "selected": selected,
        "resumed_selected": resumed_selected,
        "oracle_calls": oneshot.summary()["oracle_calls"],
        "wall_time": time.perf_counter() - t0,
    }


def run_sharded_pair(policy: str, process: str) -> dict:
    """S=2 round: drain shard 0, suspend shard 1 mid-stream, resume."""
    kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                  process=process, shards=SHARDS)
    t0 = time.perf_counter()
    oneshot = start_sharded_session(**kwargs).advance()
    summary = oneshot.summary()
    selected = sorted(map(str, summary["selected"]))

    suspended = start_sharded_session(**kwargs)
    suspended.advance_shard(0)
    suspended.advance_shard(1, max(1, suspended.run.runs[1].n // 2))
    checkpoint = json.loads(json.dumps(suspended.checkpoint(), allow_nan=False))
    resumed = resume_sharded_session(checkpoint).advance()
    resumed_selected = sorted(map(str, resumed.summary()["selected"]))

    # Feasibility: the merged set respects the policy's constraint —
    # the reduced unit-knapsack load for the knapsack rule, the hire
    # budget for everything else.
    merged = resumed.summary()["selected"]
    if policy == "knapsack":
        _, weights = build_workload(resumed.recipe)
        feasible = sum(weights[e] for e in merged) <= 1.0 + 1e-9
    else:
        feasible = len(merged) <= (1 if policy == "classical" else K)
    ok = resumed.finished and resumed_selected == selected and feasible
    return {
        "policy": policy,
        "process": process,
        "shards": SHARDS,
        "ok": ok,
        "selected": selected,
        "resumed_selected": resumed_selected,
        "oracle_calls": summary["oracle_calls"],
        "wall_time": time.perf_counter() - t0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write results JSON here")
    args = parser.parse_args(argv)

    results = [
        runner(policy, process)
        for policy in SESSION_POLICIES
        for process in arrival_process_names()
        for runner in (run_pair, run_sharded_pair)
    ]
    failures = [r for r in results if not r["ok"]]
    for r in results:
        status = "ok " if r["ok"] else "FAIL"
        print(f"{status} {r['policy']:<12} {r['process']:<15} S={r['shards']} "
              f"hired={len(r['selected'])} calls={r['oracle_calls']}")
    payload = {
        "pairs": len(results),
        "failures": len(failures),
        "results": results,
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if failures:
        print(f"streaming smoke: {len(failures)} failing pairs", file=sys.stderr)
        return 1
    print(f"streaming smoke: all {len(results)} policy x process x shard "
          "cells ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
