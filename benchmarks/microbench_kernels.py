"""Oracle-kernel microbenchmark: naive vs vectorized batch marginals.

Times ``batch_marginals`` (the one-shot batched-marginal API) for every
kernel-backed utility family, once through the family's vectorized
kernel and once through the generic naive fallback (the same function
hidden behind a ``LambdaSetFunction``, which advertises no kernel).
This is the before/after pair for the PR-3 oracle-kernel layer: the
naive column is what every greedy round cost per candidate before, the
kernel column what it costs now.

Run standalone (CI's bench-gate job uploads the JSON as an artifact):

    PYTHONPATH=src python benchmarks/microbench_kernels.py \
        --output kernel_microbench.json
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from repro.core.functions import (
    AdditiveFunction,
    BudgetAdditiveFunction,
    CoverageFunction,
    CutFunction,
    FacilityLocationFunction,
    WeightedCoverageFunction,
)
from repro.core.submodular import LambdaSetFunction


def _build(family: str, n: int, rng: np.random.Generator):
    els = [f"e{i}" for i in range(n)]
    if family == "additive":
        return AdditiveFunction({e: float(rng.random()) for e in els})
    if family == "budget_additive":
        return BudgetAdditiveFunction(
            {e: float(rng.random()) for e in els}, cap=n / 8.0
        )
    covers = {
        e: {f"u{j}" for j in rng.choice(max(4, n // 2), size=4, replace=False)}
        for e in els
    }
    if family == "coverage":
        return CoverageFunction(covers)
    if family == "weighted_coverage":
        return WeightedCoverageFunction(
            covers, {f"u{j}": float(rng.random()) for j in range(max(4, n // 2))}
        )
    if family == "cut":
        edges = [
            (els[i], els[j], float(rng.random()))
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.1
        ]
        return CutFunction(els, edges)
    if family == "facility":
        return FacilityLocationFunction(els, rng.random((max(2, n // 4), n)))
    raise ValueError(family)


FAMILIES = (
    "additive",
    "budget_additive",
    "coverage",
    "weighted_coverage",
    "cut",
    "facility",
)


def _time_batches(fn, selection, candidates, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn.batch_marginals(selection, candidates)
        best = min(best, time.perf_counter() - t0)
    return best


def run(n: int, rounds: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    report: dict = {"n": n, "rounds": rounds, "families": {}}
    for family in FAMILIES:
        fn = _build(family, n, rng)
        ground = sorted(fn.ground_set, key=repr)
        selection = set(ground[: n // 4])
        candidates = ground
        naive = LambdaSetFunction(fn.ground_set, fn.value)
        # Verify agreement before trusting the timing comparison.
        fast_g = fn.batch_marginals(selection, candidates)
        naive_g = naive.batch_marginals(selection, candidates)
        if not np.allclose(fast_g, naive_g, rtol=1e-12, atol=1e-12):
            raise AssertionError(f"kernel/naive disagreement for {family}")
        t_kernel = _time_batches(fn, selection, candidates, rounds)
        t_naive = _time_batches(naive, selection, candidates, rounds)
        report["families"][family] = {
            "kernel_s": t_kernel,
            "naive_s": t_naive,
            "speedup": t_naive / t_kernel if t_kernel > 0 else float("inf"),
        }
    return report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=400, help="ground-set size")
    parser.add_argument("--rounds", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument("--seed", type=int, default=20100612)
    parser.add_argument("--output", default="kernel_microbench.json")
    args = parser.parse_args()
    report = run(args.n, args.rounds, args.seed)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    width = max(len(f) for f in report["families"])
    print(f"oracle-kernel microbench (n={args.n}, best of {args.rounds})")
    for family, row in report["families"].items():
        print(
            f"  {family:<{width}}  naive {row['naive_s'] * 1e3:8.2f} ms"
            f"  kernel {row['kernel_s'] * 1e3:8.2f} ms"
            f"  speedup x{row['speedup']:.1f}"
        )


if __name__ == "__main__":
    main()
