"""Oracle-kernel microbenchmark: naive vs vectorized batch marginals.

Two modes:

* **default** — times ``batch_marginals`` for every kernel-backed
  utility family, once through the family's vectorized kernel and once
  through the generic naive fallback (the same function hidden behind a
  ``LambdaSetFunction``, which advertises no kernel).  This is the
  before/after pair for the PR-3 oracle-kernel layer, and the output
  shape is unchanged from that PR so ``BENCH_PR3.json``-style records
  still compare.  ``--n``/``--rounds``/``--families``/``--backend``
  parameterize it.

* **--scaling** — the kernel-backend-v2 scaling curve: for each family
  in coverage / weighted_coverage / cut / additive and each
  ``n = 10^3..10^6`` (capped by ``--max-n``), build an array-backed
  sparse instance, time one batched-marginal call over a fixed
  candidate pool per available backend (sparse always; dense only where
  the dense arrays fit under ``DENSE_CELL_LIMIT``; naive only at small
  n), and record best-of-rounds wall time plus tracemalloc peak and
  ``ru_maxrss``.  A subsampled section runs exact greedy vs
  stochastic-greedy (per-round seeded uniform candidate samples) and
  records the **measured** utility drift — subsampling is opt-in
  everywhere, so its cost/accuracy trade lives in the bench output, not
  in defaults.  ``--compare BASE.json`` gates wall time against a
  committed curve (>1.8x on any matched cell fails), which is what the
  CI ``kernels-scaling`` job runs.

Run standalone (CI's bench-gate job uploads the JSON as an artifact):

    PYTHONPATH=src python benchmarks/microbench_kernels.py \
        --output kernel_microbench.json
    PYTHONPATH=src python benchmarks/microbench_kernels.py \
        --scaling --output BENCH_PR9.json
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
import tracemalloc

import numpy as np

from repro.core.functions import (
    AdditiveFunction,
    BudgetAdditiveFunction,
    CoverageFunction,
    CutFunction,
    FacilityLocationFunction,
    WeightedCoverageFunction,
)
from repro.core.kernels import DENSE_CELL_LIMIT
from repro.core.submodular import LambdaSetFunction
from repro.workloads.secretary_streams import (
    sparse_additive_utility,
    sparse_coverage_utility,
    sparse_cut_utility,
)

SCALING_SCHEMA = "kernels-scaling/1"

#: Wall-regression gate (mirrors the repro-bench CI gate): a matched
#: cell may not be slower than 1.8x its committed baseline.
WALL_TOLERANCE = 1.8

#: Cells faster than this (seconds per call) on *both* sides are noise
#: at CI-runner resolution and never gate.
WALL_FLOOR_S = 5e-4


def _build(family: str, n: int, rng: np.random.Generator):
    els = [f"e{i}" for i in range(n)]
    if family == "additive":
        return AdditiveFunction({e: float(rng.random()) for e in els})
    if family == "budget_additive":
        return BudgetAdditiveFunction(
            {e: float(rng.random()) for e in els}, cap=n / 8.0
        )
    covers = {
        e: {f"u{j}" for j in rng.choice(max(4, n // 2), size=4, replace=False)}
        for e in els
    }
    if family == "coverage":
        return CoverageFunction(covers)
    if family == "weighted_coverage":
        return WeightedCoverageFunction(
            covers, {f"u{j}": float(rng.random()) for j in range(max(4, n // 2))}
        )
    if family == "cut":
        edges = [
            (els[i], els[j], float(rng.random()))
            for i in range(n)
            for j in range(i + 1, n)
            if rng.random() < 0.1
        ]
        return CutFunction(els, edges)
    if family == "facility":
        return FacilityLocationFunction(els, rng.random((max(2, n // 4), n)))
    raise ValueError(family)


FAMILIES = (
    "additive",
    "budget_additive",
    "coverage",
    "weighted_coverage",
    "cut",
    "facility",
)

SCALING_FAMILIES = ("coverage", "weighted_coverage", "cut", "additive")

SCALING_NS = (1_000, 10_000, 100_000, 1_000_000)

#: The naive fallback re-evaluates F per candidate; past this n it
#: contributes nothing but hours to the curve.
NAIVE_MAX_N = 2_000

SCALING_BATCH = 4096
SCALING_SELECTED = 16


def _time_batches(fn, selection, candidates, rounds: int, backend=None) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn.batch_marginals(selection, candidates, backend=backend)
        best = min(best, time.perf_counter() - t0)
    return best


def run(n: int, rounds: int, seed: int, families=FAMILIES, backend=None) -> dict:
    """Default mode: kernel vs naive per family (PR-3 report shape)."""
    rng = np.random.default_rng(seed)
    report: dict = {"n": n, "rounds": rounds, "families": {}}
    for family in families:
        fn = _build(family, n, rng)
        ground = sorted(fn.ground_set, key=repr)
        selection = set(ground[: n // 4])
        candidates = ground
        naive = LambdaSetFunction(fn.ground_set, fn.value)
        # Verify agreement before trusting the timing comparison.
        fast_g = fn.batch_marginals(selection, candidates, backend=backend)
        naive_g = naive.batch_marginals(selection, candidates)
        if not np.allclose(fast_g, naive_g, rtol=1e-12, atol=1e-12):
            raise AssertionError(f"kernel/naive disagreement for {family}")
        t_kernel = _time_batches(fn, selection, candidates, rounds, backend=backend)
        t_naive = _time_batches(naive, selection, candidates, rounds)
        report["families"][family] = {
            "kernel_s": t_kernel,
            "naive_s": t_naive,
            "speedup": t_naive / t_kernel if t_kernel > 0 else float("inf"),
        }
    return report


# -- scaling-curve mode ------------------------------------------------------


def _scaling_instance(family: str, n: int, seed: int):
    """Array-backed instance + its dense-array cell count."""
    rng = np.random.default_rng(seed)
    universe = max(16, n // 2)
    if family == "coverage":
        fn = sparse_coverage_utility(n, universe, skills_per_secretary=6, rng=rng)
        return fn, n * universe
    if family == "weighted_coverage":
        fn = sparse_coverage_utility(
            n, universe, skills_per_secretary=6, weighted=True, rng=rng
        )
        return fn, n * universe
    if family == "cut":
        fn = sparse_cut_utility(n, avg_degree=8.0, rng=rng)
        return fn, n * n
    if family == "additive":
        fn = sparse_additive_utility(n, rng=rng)
        return fn, n
    raise ValueError(family)


def _backends_for(family: str, n: int, cells: int):
    """Which backends produce a distinct measurement for this cell.

    weighted_coverage and additive have a single kernel implementation
    (their arithmetic is CSR/vector-native), so only one kernel column
    is recorded for them; coverage and cut measure dense vs sparse
    wherever the dense arrays fit.
    """
    if family in ("weighted_coverage", "additive"):
        out = ["sparse"]
    else:
        out = ["sparse"] + (["dense"] if cells <= DENSE_CELL_LIMIT else [])
    if n <= NAIVE_MAX_N:
        out.append("naive")
    return out


def _measure_cell(fn, n: int, backend: str, rounds: int, seed: int) -> dict:
    """Time one batched-marginal call; peak memory over build + call."""
    rng = np.random.default_rng(seed + 1)
    pool = np.sort(rng.choice(n, size=min(SCALING_BATCH, n), replace=False))
    pool_list = [int(e) for e in pool]
    selected = pool_list[:SCALING_SELECTED]
    rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    tracemalloc.start()
    ev = fn.incremental_evaluator(backend=backend)
    for e in selected:
        ev.add(e)
    ev.gains(pool_list)  # warm + included in the traced peak
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        ev.gains(pool_list)
        best = min(best, time.perf_counter() - t0)
    return {
        "backend": backend,
        "batch": len(pool_list),
        "ms_per_call": best * 1e3,
        "peak_traced_bytes": int(peak),
        "ru_maxrss_kb": int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss),
        "ru_maxrss_kb_before": int(rss0),
    }


def _greedy_value(fn, k: int, pool, sample_size=None, seed: int = 0):
    """(value, wall seconds) of (stochastic-)greedy over *pool*."""
    ev = fn.incremental_evaluator()
    remaining = list(pool)
    t0 = time.perf_counter()
    for r in range(k):
        if not remaining:
            break
        if sample_size is None or sample_size >= len(remaining):
            idx = np.arange(len(remaining))
        else:
            gen = np.random.default_rng((seed, r))
            idx = np.sort(gen.choice(len(remaining), size=sample_size, replace=False))
        gains = ev.gains([remaining[i] for i in idx])
        best = int(idx[int(np.argmax(gains))])
        e = remaining.pop(best)
        ev.add(e)
    return float(ev.current_value), time.perf_counter() - t0


def _measure_subsampled(seed: int) -> list:
    """Exact vs stochastic greedy: measured drift per (family, rate)."""
    out = []
    k = SCALING_SELECTED
    for family in ("coverage", "additive"):
        fn, _cells = _scaling_instance(family, 10_000, seed)
        pool = list(range(10_000))
        exact_value, exact_s = _greedy_value(fn, k, pool)
        for sample_size in (256, 1024):
            sub_value, sub_s = _greedy_value(
                fn, k, pool, sample_size=sample_size, seed=seed
            )
            out.append(
                {
                    "family": family,
                    "n": 10_000,
                    "k": k,
                    "sample_size": sample_size,
                    "exact_value": exact_value,
                    "subsampled_value": sub_value,
                    "utility_drift": (
                        (exact_value - sub_value) / exact_value if exact_value else 0.0
                    ),
                    "exact_s": exact_s,
                    "subsampled_s": sub_s,
                    "speedup": exact_s / sub_s if sub_s > 0 else float("inf"),
                }
            )
    return out


def run_scaling(rounds: int, seed: int, max_n: int, families=SCALING_FAMILIES) -> dict:
    """The scaling-curve report (schema ``kernels-scaling/1``)."""
    cells = []
    for family in families:
        for n in SCALING_NS:
            if n > max_n:
                continue
            fn, cell_count = _scaling_instance(family, n, seed)
            for backend in _backends_for(family, n, cell_count):
                row = _measure_cell(fn, n, backend, rounds, seed)
                row.update({"family": family, "n": n, "dense_cells": cell_count})
                cells.append(row)
                print(
                    f"  {family:<18} n={n:<8} {backend:<7}"
                    f" {row['ms_per_call']:9.3f} ms/call"
                    f"  peak {row['peak_traced_bytes'] / 1e6:8.1f} MB",
                    flush=True,
                )
    return {
        "schema": SCALING_SCHEMA,
        "seed": seed,
        "rounds": rounds,
        "batch": SCALING_BATCH,
        "selected": SCALING_SELECTED,
        "cells": cells,
        "subsampled": _measure_subsampled(seed),
    }


def compare_scaling(report: dict, baseline: dict) -> list:
    """Wall-regression check vs a committed curve; returns failures.

    Cells are matched by ``(family, n, backend)``; cells missing on
    either side are skipped (a reduced CI curve gates only what it
    ran).  A matched cell fails when it is more than ``WALL_TOLERANCE``
    times slower than baseline and above the noise floor.
    """
    base = {
        (c["family"], c["n"], c["backend"]): c for c in baseline.get("cells", [])
    }
    failures = []
    for c in report.get("cells", []):
        key = (c["family"], c["n"], c["backend"])
        b = base.get(key)
        if b is None:
            continue
        cur_s = c["ms_per_call"] / 1e3
        base_s = b["ms_per_call"] / 1e3
        if cur_s <= WALL_FLOOR_S and base_s <= WALL_FLOOR_S:
            continue
        if cur_s > WALL_TOLERANCE * max(base_s, WALL_FLOOR_S):
            failures.append(
                f"{key}: {c['ms_per_call']:.3f} ms vs baseline "
                f"{b['ms_per_call']:.3f} ms (> {WALL_TOLERANCE}x)"
            )
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=400, help="ground-set size")
    parser.add_argument("--rounds", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument("--seed", type=int, default=20100612)
    parser.add_argument("--output", default="kernel_microbench.json")
    parser.add_argument(
        "--families",
        default=None,
        help="comma-separated family subset (default: all for the mode)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=("auto", "dense", "sparse", "naive"),
        help="pin the kernel backend in default mode (default: auto)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="emit the kernels-scaling/1 curve instead of the PR-3 report",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=max(SCALING_NS),
        help="cap the scaling curve's ground-set sizes (CI uses 1e5)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="scaling mode: gate wall time against a committed curve",
    )
    args = parser.parse_args()
    if args.scaling:
        families = (
            tuple(args.families.split(",")) if args.families else SCALING_FAMILIES
        )
        report = run_scaling(args.rounds, args.seed, args.max_n, families)
    else:
        families = tuple(args.families.split(",")) if args.families else FAMILIES
        report = run(args.n, args.rounds, args.seed, families, args.backend)
    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    if args.scaling:
        print(f"kernel scaling curve -> {args.output} ({len(report['cells'])} cells)")
        for row in report["subsampled"]:
            print(
                f"  subsampled {row['family']:<10} s={row['sample_size']:<5}"
                f" drift {row['utility_drift'] * 100:6.2f}%"
                f"  speedup x{row['speedup']:.1f}"
            )
        if args.compare:
            with open(args.compare, encoding="utf-8") as fh:
                baseline = json.load(fh)
            failures = compare_scaling(report, baseline)
            if failures:
                print("WALL REGRESSION vs committed curve:")
                for f in failures:
                    print(f"  {f}")
                sys.exit(1)
            print(f"gate clean vs {args.compare}")
        return
    width = max(len(f) for f in report["families"])
    print(f"oracle-kernel microbench (n={args.n}, best of {args.rounds})")
    for family, row in report["families"].items():
        print(
            f"  {family:<{width}}  naive {row['naive_s'] * 1e3:8.2f} ms"
            f"  kernel {row['kernel_s'] * 1e3:8.2f} ms"
            f"  speedup x{row['speedup']:.1f}"
        )


if __name__ == "__main__":
    main()
