"""E10 — Theorem 3.1.4 / 3.5.1: the subadditive gap is Theta(sqrt n).

Two measurements on the hidden-set hard function:

* upper bound — the O(sqrt n) algorithm's measured competitive ratio at
  k = sqrt(n) stays above 1/O(sqrt n) for n in {64, 256, 1024};
* hardness — a query-bounded adversary probing the oracle with random
  size-k sets almost never sees a value above 1, so its achievable
  value stalls at ~1 while OPT ~ k/r grows: the measured gap scales
  with sqrt(n) exactly as the lower-bound construction predicts.
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.rng import as_generator, spawn
from repro.secretary.stream import SecretaryStream
from repro.secretary.subadditive import HiddenSetFunction, subadditive_secretary

from conftest import emit

SIZES = [64, 256, 1024]
TRIALS = 40


def test_e10_algorithm_upper_bound(benchmark, master_seed):
    master = as_generator(master_seed)
    rows = []
    for n in SIZES:
        k = int(math.isqrt(n))
        ratios = []
        for child in spawn(master, TRIALS):
            fn = HiddenSetFunction([f"x{i}" for i in range(n)], k, 1.0, rng=child)
            stream = SecretaryStream(fn, rng=child)
            result = subadditive_secretary(stream, k, rng=child)
            ratios.append(fn.value(result.selected) / fn.optimum())
        stats = summarize(ratios)
        floor = 1.0 / (4.0 * math.sqrt(n))
        rows.append([n, k, stats.mean, floor])
    emit(
        format_table(
            ["n", "k=sqrt(n)", "mean ratio", "floor 1/(4 sqrt n)"],
            rows,
            title="E10  subadditive secretary O(sqrt n) algorithm",
        )
    )
    for _, _, mean, floor in rows:
        assert mean >= floor

    fn = HiddenSetFunction([f"x{i}" for i in range(256)], 16, 1.0, rng=1)
    benchmark(lambda: subadditive_secretary(SecretaryStream(fn, rng=2), 16, rng=3))


def test_e10_hardness_gap(benchmark, master_seed):
    """The information-hiding gap of Theorem 3.5.1, measured."""
    master = as_generator(master_seed + 1)
    rows = []
    for n in SIZES:
        k = int(math.isqrt(n))
        r = max(1.0, k / 4.0)
        gaps, informative = [], 0
        queries_per_trial = 40
        for child in spawn(master, 10):
            fn = HiddenSetFunction([f"x{i}" for i in range(n)], k, r, rng=child)
            elements = sorted(fn.ground_set)
            best_seen = 1.0
            for _ in range(queries_per_trial):
                idx = child.choice(n, size=k, replace=False)
                v = fn.value(frozenset(elements[i] for i in idx))
                if v > 1.0:
                    informative += 1
                best_seen = max(best_seen, v)
            gaps.append(fn.optimum() / best_seen)
        rows.append(
            [n, k, r, summarize(gaps).mean,
             informative / (10 * queries_per_trial), math.sqrt(n) / 4]
        )
    emit(
        format_table(
            ["n", "k", "r", "mean OPT/found", "informative query frac", "~sqrt(n)/4"],
            rows,
            title="E10b  hidden-set hardness: value found by blind queries",
        )
    )
    # The gap must grow with n (the Omega(sqrt n) shape).
    assert rows[-1][3] > rows[0][3]
    # Blind queries almost never leak information.
    for _, _, _, _, frac, _ in rows:
        assert frac <= 0.25

    fn = HiddenSetFunction([f"x{i}" for i in range(1024)], 32, 8.0, rng=9)
    benchmark(lambda: fn.value(frozenset(sorted(fn.ground_set)[:32])))
