"""E3 — Theorem 2.3.1: prize-collecting bicriteria guarantee.

Paper claim: value >= (1 - eps) Z at cost O(log(1/eps)) * OPT(Z).
Measured: value fraction and cost/OPT(Z) over an eps sweep with OPT
certified exactly.

The greedy side runs through the batched experiment engine's
``prize_collecting`` task adapter (:mod:`repro.engine.tasks`); the
exact reference rebuilds each record's instance from its spec
(deterministic by construction) and certifies it locally — the same
split E2 uses for Theorem 2.2.1.
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.engine import SweepSpec, build_instance, run_sweep
from repro.scheduling.exact import optimal_prize_collecting_bruteforce
from repro.scheduling.prize_collecting import prize_collecting_schedule
from repro.workloads.jobs import small_certifiable_instance

from conftest import emit

EPS_SWEEP = [0.5, 0.25, 0.1]
TRIALS = 8
TARGET_FRACTION = 0.6


def test_e3_eps_sweep(benchmark, master_seed):
    rows = []
    for eps in EPS_SWEEP:
        sweep = SweepSpec(
            task="prize_collecting",
            families=("certifiable",),
            grid=((7, 2, 16),),
            methods=("lazy",),
            trials=TRIALS,
            master_seed=master_seed,
            params=(
                ("epsilon", eps),
                ("n_candidate_intervals", 12),
                ("target_fraction", TARGET_FRACTION),
                ("value_spread", 4.0),
            ),
        )
        specs = sweep.expand()
        result = run_sweep(specs)
        fractions, ratios = [], []
        for spec, record in zip(specs, result.records):
            inst = build_instance(spec)
            target = TARGET_FRACTION * inst.total_value()
            opt = optimal_prize_collecting_bruteforce(inst, target).cost
            fractions.append(record.utility / target)
            ratios.append(record.cost / opt if opt > 0 else 1.0)
        bound = 2.0 * math.log2(1.0 / eps) + 2.0
        rows.append(
            [eps, 1 - eps, summarize(fractions).mean, summarize(ratios).maximum, bound]
        )
    emit(
        format_table(
            ["eps", "required value frac", "measured frac", "max cost/OPT", "proof bound"],
            rows,
            title="E3  Theorem 2.3.1 prize-collecting bicriteria",
        )
    )
    for eps, req, frac, worst, bound in rows:
        assert frac >= req - 1e-9
        assert worst <= bound + 1e-9

    inst = small_certifiable_instance(7, 2, 16, 12, value_spread=4.0, rng=0)
    target = TARGET_FRACTION * inst.total_value()
    benchmark(lambda: prize_collecting_schedule(inst, target, 0.25))
