"""E4 — Theorem 2.3.3: exact-value prize collecting.

Paper claim: value >= Z at cost O((log n + log Delta) B), Delta the
max/min job-value ratio.
Measured: threshold always met; cost/OPT across Delta in {1, 4, 16};
top-up interval counts (the proof predicts at most one is needed).
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.rng import as_generator, spawn
from repro.scheduling.exact import optimal_prize_collecting_bruteforce
from repro.scheduling.prize_collecting import prize_collecting_exact_value
from repro.workloads.jobs import small_certifiable_instance

from conftest import emit

DELTA_SWEEP = [1.0, 4.0, 16.0]
TRIALS = 8


def test_e4_delta_sweep(benchmark, master_seed):
    rows = []
    master = as_generator(master_seed)
    for delta in DELTA_SWEEP:
        ratios, topups, met = [], [], 0
        for child in spawn(master, TRIALS):
            inst = small_certifiable_instance(
                6, 2, 14, 11, value_spread=delta, rng=child
            )
            target = 0.6 * inst.total_value()
            opt = optimal_prize_collecting_bruteforce(inst, target).cost
            result = prize_collecting_exact_value(inst, target)
            met += result.value >= target - 1e-9
            ratios.append(result.cost / opt if opt > 0 else 1.0)
            topups.append(len(result.top_up_intervals))
        n = 6
        bound = 2.0 * (math.log2(n + 1) + math.log2(max(2.0, delta))) + 1.0
        rows.append(
            [delta, f"{met}/{TRIALS}", summarize(ratios).maximum,
             summarize(topups).maximum, bound]
        )
    emit(
        format_table(
            ["Delta", "threshold met", "max cost/OPT", "max top-ups", "bound O(logn+logD)"],
            rows,
            title="E4  Theorem 2.3.3 exact-value prize collecting",
        )
    )
    for delta, met, worst, max_topups, bound in rows:
        assert met == f"{TRIALS}/{TRIALS}"
        assert worst <= bound + 1e-9
        assert max_topups <= 1 + 1e-9  # proof: one extra interval suffices

    inst = small_certifiable_instance(6, 2, 14, 11, value_spread=4.0, rng=1)
    target = 0.6 * inst.total_value()
    benchmark(lambda: prize_collecting_exact_value(inst, target))
