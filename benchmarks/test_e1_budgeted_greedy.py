"""E1 — Lemma 2.1.2: bicriteria greedy vs. planted optimum.

Paper claim: utility >= (1 - eps) x at cost O(B log(1/eps)).
Measured: utility fraction achieved and cost/B across an eps sweep, on
planted weighted-cover instances where B is known by construction; plus
the per-phase cost table mirroring the proof's "each phase costs <= 2B".
"""

import math

from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import CoverageFunction
from repro.core.lazy import lazy_budgeted_greedy
from repro.rng import as_generator, spawn

from conftest import emit

EPS_SWEEP = [0.5, 0.25, 0.1, 0.01]
TRIALS = 12


def planted_instance(rng, n_items=60, n_opt=6, n_noise=24):
    gen = as_generator(rng)
    covers, costs = {}, {}
    bounds = sorted(gen.choice(range(1, n_items), size=n_opt - 1, replace=False))
    prev = 0
    for i, b in enumerate(list(bounds) + [n_items]):
        covers[f"opt{i}"] = set(range(prev, b))
        costs[f"opt{i}"] = 1.0
        prev = b
    for i in range(n_noise):
        mask = gen.random(n_items) < 0.2
        covers[f"noise{i}"] = {j for j in range(n_items) if mask[j]} or {0}
        costs[f"noise{i}"] = float(0.7 + 1.5 * gen.random())
    inst = BudgetedInstance(
        CoverageFunction(covers), {k: frozenset({k}) for k in covers}, costs
    )
    return inst, n_items, float(n_opt)


def test_e1_eps_sweep(benchmark, master_seed):
    rows = []
    master = as_generator(master_seed)
    for eps in EPS_SWEEP:
        fractions, ratios = [], []
        for child in spawn(master, TRIALS):
            inst, n, opt_cost = planted_instance(child)
            result = lazy_budgeted_greedy(inst, target=float(n), epsilon=eps)
            fractions.append(result.utility / n)
            ratios.append(result.cost / opt_cost)
        bound = 2.0 * math.log2(1.0 / eps) + 2.0
        rows.append(
            [eps, 1 - eps, summarize(fractions).mean, summarize(ratios).mean, bound]
        )
    emit(
        format_table(
            ["eps", "required utility frac", "measured frac", "measured cost/B", "proof bound"],
            rows,
            title="E1  Lemma 2.1.2 bicriteria greedy (planted cover, 60 items)",
        )
    )
    for eps, req, frac, ratio, bound in rows:
        assert frac >= req - 1e-9
        assert ratio <= bound + 1e-9

    inst, n, _ = planted_instance(as_generator(master_seed))
    benchmark(lambda: lazy_budgeted_greedy(inst, target=float(n), epsilon=0.1))


def test_e1_phase_costs(benchmark, master_seed):
    master = as_generator(master_seed + 1)
    worst_by_phase = {}
    for child in spawn(master, TRIALS):
        inst, n, opt_cost = planted_instance(child)
        result = budgeted_greedy(inst, target=float(n), epsilon=1.0 / (n + 1))
        for phase, cost in result.cost_by_phase().items():
            worst_by_phase[phase] = max(worst_by_phase.get(phase, 0.0), cost / opt_cost)
    rows = [[p, c, 2.0] for p, c in sorted(worst_by_phase.items())]
    emit(
        format_table(
            ["phase", "worst cost/B", "proof bound (2B)"],
            rows,
            title="E1b  per-phase cost accounting (Lemma 2.1.2 proof)",
        )
    )
    for _, cost_ratio, bound in rows:
        assert cost_ratio <= bound + 1e-9

    inst, n, _ = planted_instance(as_generator(master_seed + 1))
    benchmark(lambda: budgeted_greedy(inst, target=float(n), epsilon=1.0 / (n + 1)))
