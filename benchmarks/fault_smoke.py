"""Fault smoke: kill-point durability audit + deterministic chaos cells.

CI's ``fault-smoke`` job runs this script on each push.  It drives the
``repro online serve`` CLI in subprocesses under deterministic fault
plans (:mod:`repro.online.faults`) and audits the crash-consistency
contract end to end:

**Kill-point matrix** — for every registered kill site
(``checkpoint.before_write``, ``checkpoint.mid_write``,
``checkpoint.after_write``, ``report.write``) the serve process is
hard-killed (``os._exit(137)``) the first time the site fires, then
``serve --resume`` must recover the fleet with every tenant's hires,
value, cursor, **and oracle-call count** bit-identical to an unfaulted
baseline run.  ``checkpoint.mid_write`` kills inside the torn-write
window (temp file written, atomic rename pending) — the cell that
proves ``dump_json_atomic`` never leaves a truncated checkpoint behind.

**Mid-stream kill** — a paced serve with idle checkpointing is killed
after its third checkpoint write, so the resume starts from genuinely
partial per-tenant state (not just an empty or fully-final directory).

**Chaos cell** — transient faults and latency spikes on the feed and
oracle paths: the serve must complete (exit 0) with results
bit-identical to the baseline and a non-zero retry count — injected
failures cost retries, never correctness.

**Quarantine cell** — permanent faults pinned to one tenant: the serve
exits 3, that tenant reports ``quarantined`` with an error, and every
other tenant still matches the baseline.

**Determinism cell** — the chaos serve runs twice; the fired-fault logs
and per-tenant retry backoff schedules must match event for event.

Usage::

    PYTHONPATH=src python benchmarks/fault_smoke.py [--output fault_smoke.json]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KILL_EXIT_CODE = 137
KILL_SITES = (
    "checkpoint.before_write",
    "checkpoint.mid_write",
    "checkpoint.after_write",
    "report.write",
)

#: Small mixed fleet: plain monotone tenants, a nonmonotone one, and a
#: sharded one (whose resume exercises the manifest + netted counters).
FLEET = {
    "defaults": {"policy": "monotone", "family": "additive", "n": 40, "k": 3},
    "tenants": [
        {"id": "mono-a", "seed": 11},
        {"id": "mono-b", "seed": 12},
        {"id": "nonmono", "policy": "nonmonotone", "seed": 13},
        {"id": "bursty", "process": "bursty",
         "process_params": {"mean_batch": 4}, "seed": 14},
        {"id": "sharded", "shards": 2, "n": 44, "seed": 15},
    ],
}

RETRY = {"max_attempts": 5, "base_delay": 0.001, "max_delay": 0.01,
         "jitter": 0.1, "max_strikes": 3}

#: Keys that must be bit-identical between a recovered serve and the
#: unfaulted baseline, per tenant.
COMPARE_KEYS = ("selected", "value", "oracle_calls", "decisions", "cursor")


def serve(spec_path: str, *extra: str, expect: int = 0) -> subprocess.CompletedProcess:
    """Run ``repro online serve`` in a subprocess, checking its exit code."""
    cmd = [sys.executable, "-m", "repro", "online", "serve", spec_path]
    cmd.extend(extra)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.run(
        cmd, cwd=REPO, env=env, capture_output=True, text=True, timeout=120
    )
    if proc.returncode != expect:
        raise AssertionError(
            f"serve {' '.join(extra)}: exit {proc.returncode}, wanted {expect}\n"
            f"stderr: {proc.stderr[-2000:]}"
        )
    return proc


def write_plan(path: str, rules, seed: int = 0) -> None:
    """Write a fault-plan JSON file."""
    payload = {"format": "repro-fault-plan/1", "seed": seed,
               "rules": rules, "retry": RETRY}
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def compare_tenants(baseline: dict, recovered: dict,
                    keys=COMPARE_KEYS) -> list:
    """Per-tenant bit-identity check; returns mismatch descriptions."""
    problems = []
    for tid, want in baseline["tenants"].items():
        got = recovered["tenants"].get(tid)
        if got is None:
            problems.append(f"{tid}: missing from recovered report")
            continue
        if not got.get("finished"):
            problems.append(f"{tid}: not finished (state={got.get('state')})")
            continue
        for key in keys:
            if got.get(key) != want.get(key):
                problems.append(
                    f"{tid}.{key}: {got.get(key)!r} != {want.get(key)!r}"
                )
    return problems


def run_kill_cell(workdir: str, spec: str, baseline: dict, site: str,
                  *, extra_serve_args=(), at=1, label=None) -> dict:
    """Kill the serve at *site* (hit *at*), resume, audit bit-identity."""
    label = label or site
    t0 = time.perf_counter()
    plan = os.path.join(workdir, f"kill-{label}.json")
    write_plan(plan, [{"site": site, "kind": "kill", "scope": "*",
                       "at": [at]}])
    ckpt = os.path.join(workdir, f"ckpt-{label}")
    killed_out = os.path.join(workdir, f"killed-{label}.json")
    serve(spec, "--checkpoint-dir", ckpt, "--fault-plan", plan,
          "--output", killed_out, *extra_serve_args, expect=KILL_EXIT_CODE)
    resumed_out = os.path.join(workdir, f"resumed-{label}.json")
    serve(spec, "--checkpoint-dir", ckpt, "--resume",
          "--output", resumed_out)
    with open(resumed_out, "r", encoding="utf-8") as fh:
        recovered = json.load(fh)
    problems = compare_tenants(baseline, recovered)
    # A torn write may leave a stray temp file; it must never replace
    # (or corrupt) a checkpoint the resume reads — which bit-identity
    # already proves — but the killed run must also never have produced
    # a *partial* report file.
    if site == "report.write" and os.path.exists(killed_out):
        problems.append("report.write kill left a report file behind")
    return {
        "cell": f"kill:{label}", "site": site, "at": at,
        "ok": not problems, "problems": problems,
        "wall_seconds": time.perf_counter() - t0,
    }


def run_chaos_cell(workdir: str, spec: str, baseline: dict) -> dict:
    """Transient + latency faults: retries happen, results don't move."""
    t0 = time.perf_counter()
    plan = os.path.join(workdir, "chaos.json")
    write_plan(plan, [
        {"site": "serve.feed", "kind": "transient", "scope": "mono-a",
         "at": [1, 3]},
        {"site": "oracle.batch", "kind": "transient", "scope": "nonmono",
         "rate": 0.05},
        {"site": "oracle.value", "kind": "transient", "scope": "sharded#s1",
         "rate": 0.1},
        {"site": "serve.feed", "kind": "latency", "scope": "*",
         "rate": 0.2, "delay": 0.001},
    ], seed=7)
    out = os.path.join(workdir, "chaos.json.out")
    serve(spec, "--fault-plan", plan, "--output", out)
    with open(out, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    # No cursor check here: latency faults legitimately change how far
    # the producer reads ahead past an early-finishing policy, and
    # arrivals past ``done`` are dropped unrevealed (never observed,
    # never billed) — read-ahead position is a timing artifact, not a
    # result.  Hires, value, and oracle-call counts must not move.
    problems = compare_tenants(
        baseline, report,
        keys=("selected", "value", "oracle_calls", "decisions"))
    if report["totals"].get("retries", 0) < 1:
        problems.append("chaos plan injected faults but nothing retried")
    return {
        "cell": "chaos", "ok": not problems, "problems": problems,
        "retries": report["totals"].get("retries"),
        "faults_fired": len(report["faults"]["fired"])
        if isinstance(report["faults"]["fired"], list)
        else report["faults"]["fired"],
        "wall_seconds": time.perf_counter() - t0,
    }


def run_quarantine_cell(workdir: str, spec: str, baseline: dict) -> dict:
    """Permanent faults on one tenant quarantine it, not the fleet."""
    t0 = time.perf_counter()
    plan = os.path.join(workdir, "perm.json")
    write_plan(plan, [{"site": "serve.feed", "kind": "permanent",
                       "scope": "mono-b", "at": [1, 2, 3]}])
    out = os.path.join(workdir, "perm.json.out")
    serve(spec, "--fault-plan", plan, "--output", out, expect=3)
    with open(out, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    problems = []
    victim = report["tenants"]["mono-b"]
    if victim.get("state") != "quarantined" or not victim.get("error"):
        problems.append(f"mono-b not quarantined cleanly: {victim.get('state')}")
    healthy = {t: v for t, v in baseline["tenants"].items() if t != "mono-b"}
    problems += compare_tenants(
        {"tenants": healthy}, report,
        keys=("selected", "value", "oracle_calls", "decisions"))
    return {
        "cell": "quarantine", "ok": not problems, "problems": problems,
        "wall_seconds": time.perf_counter() - t0,
    }


def run_determinism_cell(workdir: str, spec: str) -> dict:
    """The same chaos plan twice: identical fault log + backoff schedule."""
    t0 = time.perf_counter()
    plan = os.path.join(workdir, "chaos.json")  # written by the chaos cell
    reports = []
    for i in range(2):
        out = os.path.join(workdir, f"det-{i}.json")
        serve(spec, "--fault-plan", plan, "--output", out)
        with open(out, "r", encoding="utf-8") as fh:
            reports.append(json.load(fh))
    a, b = reports
    problems = []
    if a["faults"] != b["faults"]:
        problems.append("fired-fault logs differ between identical runs")
    for tid in a["tenants"]:
        da = a["tenants"][tid].get("retry_delays")
        db = b["tenants"][tid].get("retry_delays")
        if da != db:
            problems.append(f"{tid}: backoff schedules differ: {da} != {db}")
    return {
        "cell": "determinism", "ok": not problems, "problems": problems,
        "wall_seconds": time.perf_counter() - t0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write the audit report JSON here")
    args = parser.parse_args(argv)

    t_start = time.perf_counter()
    cells = []
    with tempfile.TemporaryDirectory() as workdir:
        spec = os.path.join(workdir, "fleet.json")
        with open(spec, "w", encoding="utf-8") as fh:
            json.dump(FLEET, fh, indent=2)

        base_out = os.path.join(workdir, "baseline.json")
        serve(spec, "--output", base_out)
        with open(base_out, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)

        for site in KILL_SITES:
            cells.append(run_kill_cell(workdir, spec, baseline, site))
        # Mid-stream kill: idle checkpointing under pacing means the
        # third checkpoint.after_write fires while streams are partial.
        cells.append(run_kill_cell(
            workdir, spec, baseline, "checkpoint.after_write", at=3,
            label="mid-stream",
            extra_serve_args=("--pace-seconds", "0.01",
                              "--idle-seconds", "0.005"),
        ))
        cells.append(run_chaos_cell(workdir, spec, baseline))
        cells.append(run_quarantine_cell(workdir, spec, baseline))
        cells.append(run_determinism_cell(workdir, spec))

    failures = [c for c in cells if not c["ok"]]
    for c in cells:
        status = "ok " if c["ok"] else "FAIL"
        print(f"{status} {c['cell']:<28} {c['wall_seconds']:.2f}s"
              + ("" if c["ok"] else f"  {c['problems'][:3]}"))
    payload = {
        "format": "repro-bench-pr/1",
        "benchmark": "fault-audit",
        "tenants": len(FLEET["tenants"]),
        "kill_sites": list(KILL_SITES),
        "cells": cells,
        "failures": len(failures),
        "wall_seconds": time.perf_counter() - t_start,
        "note": ("every kill-point recovery must be bit-identical to the "
                 "unfaulted baseline per tenant: hires, value, cursor, "
                 "and oracle-call count"),
    }
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if failures:
        print(f"fault smoke: {len(failures)} failing cells", file=sys.stderr)
        return 1
    print(f"fault smoke: all {len(cells)} cells ok "
          f"({payload['wall_seconds']:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
