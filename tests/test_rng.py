"""Deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.rng import as_generator, random_permutation, spawn


class TestAsGenerator:
    def test_int_seed_deterministic(self):
        a, b = as_generator(42), as_generator(42)
        assert a.random() == b.random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_none_gives_fresh_stream(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_children_independent_and_deterministic(self):
        kids_a = spawn(as_generator(7), 5)
        kids_b = spawn(as_generator(7), 5)
        draws_a = [k.random() for k in kids_a]
        draws_b = [k.random() for k in kids_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) == 5

    def test_spawn_zero(self):
        assert spawn(as_generator(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)

    def test_children_differ_from_parent(self):
        parent = as_generator(3)
        children = spawn(parent, 2)
        assert children[0].random() != children[1].random()


class TestRandomPermutation:
    def test_is_permutation(self):
        items = list(range(20))
        out = random_permutation(items, as_generator(0))
        assert sorted(out) == items

    def test_nondestructive(self):
        items = [3, 1, 2]
        random_permutation(items, as_generator(0))
        assert items == [3, 1, 2]

    def test_accepts_iterables(self):
        out = random_permutation(iter("abc"), as_generator(0))
        assert sorted(out) == ["a", "b", "c"]

    def test_deterministic(self):
        a = random_permutation(range(10), as_generator(9))
        b = random_permutation(range(10), as_generator(9))
        assert a == b


class TestPublicApiSurface:
    def test_top_level_all_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_importable(self):
        import repro.analysis
        import repro.core
        import repro.matching
        import repro.matroids
        import repro.scheduling
        import repro.secretary
        import repro.workloads

        for module in (
            repro.core,
            repro.matching,
            repro.scheduling,
            repro.matroids,
            repro.secretary,
            repro.workloads,
            repro.analysis,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2
