"""Algorithms 1 and 2: structure, feasibility, empirical competitiveness."""

import math

import pytest

from repro.analysis.ratio import offline_optimum_cardinality
from repro.core.functions import AdditiveFunction
from repro.errors import BudgetError
from repro.rng import spawn, as_generator
from repro.online.runtime import segment_bounds as _segment_bounds
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import (
    monotone_submodular_secretary,
    nonmonotone_submodular_secretary,
    segmented_submodular_pick,
)
from repro.workloads.secretary_streams import (
    additive_values,
    coverage_utility,
    cut_utility,
)


class TestSegmentBounds:
    def test_even_split(self):
        assert _segment_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_distributed(self):
        bounds = _segment_bounds(10, 3)
        sizes = [e - s for s, e in bounds]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_k_larger_than_n(self):
        bounds = _segment_bounds(2, 5)
        assert sum(e - s for s, e in bounds) == 2
        assert all(e >= s for s, e in bounds)

    def test_covers_everything_exactly_once(self):
        for n, k in [(17, 4), (5, 5), (100, 7)]:
            bounds = _segment_bounds(n, k)
            covered = [t for s, e in bounds for t in range(s, e)]
            assert covered == list(range(n))


class TestAlgorithm1:
    def test_at_most_k_hires(self):
        fn = coverage_utility(60, 30, rng=0)
        stream = SecretaryStream(fn, rng=1)
        result = monotone_submodular_secretary(stream, 5)
        assert result.hires <= 5

    def test_one_hire_per_segment(self):
        fn = coverage_utility(60, 30, rng=2)
        stream = SecretaryStream(fn, rng=3)
        result = monotone_submodular_secretary(stream, 6)
        picks = [t.picked for t in result.traces if t.picked is not None]
        assert len(picks) == len(set(picks)) == result.hires
        assert len(result.traces) == 6

    def test_k_must_be_positive(self):
        fn = coverage_utility(10, 5, rng=4)
        stream = SecretaryStream(fn, rng=5)
        with pytest.raises(BudgetError):
            monotone_submodular_secretary(stream, 0)

    def test_traces_are_ordered_windows(self):
        fn = coverage_utility(40, 20, rng=6)
        stream = SecretaryStream(fn, rng=7)
        result = monotone_submodular_secretary(stream, 4)
        for t in result.traces:
            assert t.start <= t.observe_until <= t.end

    def test_value_nondecreasing_across_picks(self):
        fn = coverage_utility(60, 30, rng=8)
        stream = SecretaryStream(fn, rng=9)
        result = monotone_submodular_secretary(stream, 6)
        for t in result.traces:
            assert t.gain >= -1e-9

    def test_no_oracle_peeking(self):
        # ArrivalOracle raises on future queries; a clean run certifies
        # the algorithm is genuinely online.
        fn = coverage_utility(50, 25, rng=10)
        stream = SecretaryStream(fn, rng=11)
        monotone_submodular_secretary(stream, 5)  # must not raise

    def test_empirical_competitiveness_additive(self):
        # Theorem 3.1.1 guarantees E[f(T_k)] >= OPT/(7e); on benign
        # additive streams the measured mean is far above the bound.
        k, n, trials = 4, 120, 60
        master = as_generator(123)
        ratios = []
        for child in spawn(master, trials):
            fn, values = additive_values(n, rng=child)
            opt = sum(sorted(values.values(), reverse=True)[:k])
            stream = SecretaryStream(fn, rng=child)
            result = monotone_submodular_secretary(stream, k)
            ratios.append(fn.value(result.selected) / opt)
        mean = sum(ratios) / trials
        assert mean >= 1.0 / (7 * math.e)

    def test_empirical_competitiveness_coverage(self):
        k, trials = 4, 40
        master = as_generator(321)
        ratios = []
        for child in spawn(master, trials):
            fn = coverage_utility(80, 25, rng=child)
            opt, _ = offline_optimum_cardinality(fn, k, exhaustive_budget=0)
            stream = SecretaryStream(fn, rng=child)
            result = monotone_submodular_secretary(stream, k)
            ratios.append(fn.value(result.selected) / opt if opt else 1.0)
        mean = sum(ratios) / trials
        assert mean >= 1.0 / (7 * math.e)


class TestAlgorithm2:
    def test_half_strategies_used(self):
        fn = cut_utility(40, rng=0)
        strategies = set()
        for seed in range(12):
            stream = SecretaryStream(fn, rng=seed)
            result = nonmonotone_submodular_secretary(stream, 4, rng=seed)
            strategies.add(result.strategy)
        assert strategies == {"first-half", "second-half"}

    def test_at_most_k_hires(self):
        fn = cut_utility(40, rng=1)
        stream = SecretaryStream(fn, rng=2)
        result = nonmonotone_submodular_secretary(stream, 3, rng=3)
        assert result.hires <= 3

    def test_selection_within_chosen_half(self):
        fn = cut_utility(30, rng=4)
        stream = SecretaryStream(fn, rng=5)
        result = nonmonotone_submodular_secretary(stream, 3, rng=6)
        half = stream.n // 2
        if result.strategy == "first-half":
            allowed = set(stream.order[:half])
        else:
            allowed = set(stream.order[half:])
        assert set(result.selected) <= allowed

    def test_empirical_competitiveness_cut(self):
        # Bound: OPT / (8 e^2) ~ 0.0169 OPT. Cut streams easily beat it.
        k, trials = 4, 40
        master = as_generator(777)
        ratios = []
        for child in spawn(master, trials):
            fn = cut_utility(40, rng=child)
            opt, _ = offline_optimum_cardinality(fn, k, exhaustive_budget=0)
            stream = SecretaryStream(fn, rng=child)
            result = nonmonotone_submodular_secretary(stream, k, rng=child)
            ratios.append(fn.value(result.selected) / opt if opt else 1.0)
        mean = sum(ratios) / trials
        assert mean >= 1.0 / (8 * math.e**2)


class TestSegmentEngine:
    def test_respects_can_take(self):
        fn = AdditiveFunction({f"s{i}": float(i) for i in range(20)})
        stream = SecretaryStream(fn, rng=0)
        forbidden = set(list(fn.ground_set)[:10])
        result = segmented_submodular_pick(
            iter(stream), stream.n, stream.oracle, 5,
            can_take=lambda T, a: a not in forbidden,
        )
        assert not (set(result.selected) & forbidden)

    def test_zero_length_stream(self):
        fn = AdditiveFunction({"s0": 1.0})
        stream = SecretaryStream(fn, rng=0)
        result = segmented_submodular_pick(iter([]), 0, stream.oracle, 3)
        assert result.selected == frozenset()
