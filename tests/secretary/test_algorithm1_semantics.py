"""Hand-verified Algorithm 1 runs on explicit arrival orders.

The statistical tests show the algorithm is competitive; these pin down
its exact mechanics — observation windows, thresholds, the monotone
clamp, one-hire-per-segment — on small deterministic streams where the
expected trace can be computed by hand from the paper's pseudocode.
"""

import math

from repro.core.functions import AdditiveFunction, CoverageFunction
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import monotone_submodular_secretary


def run(values_or_fn, order, k):
    fn = (
        AdditiveFunction(values_or_fn)
        if isinstance(values_or_fn, dict)
        else values_or_fn
    )
    stream = SecretaryStream(fn, order=order)
    return fn, monotone_submodular_secretary(stream, k)


class TestSingleSegment:
    def test_k1_is_classical_rule_on_marginals(self):
        # n=8, k=1: one segment, window = floor(8/e) = 2.
        values = {f"s{i}": float(v) for i, v in enumerate([3, 5, 2, 7, 1, 9, 4, 8])}
        order = [f"s{i}" for i in range(8)]
        fn, result = run(values, order, 1)
        # Window sees values 3, 5 -> threshold 5; first later >= 5 is s3 (7).
        assert result.selected == frozenset({"s3"})
        trace = result.traces[0]
        assert trace.observe_until == 2
        assert trace.threshold == 5.0
        assert trace.gain == 7.0

    def test_best_in_window_blocks_all(self):
        values = {"a": 9.0, "b": 8.0, "c": 1.0, "d": 2.0, "e": 3.0, "f": 4.0,
                  "g": 5.0, "h": 6.0}
        order = list("abcdefgh")  # window = {a, b}, threshold 9
        fn, result = run(values, order, 1)
        assert result.selected == frozenset()
        assert result.traces[0].picked is None

    def test_equal_value_meets_threshold(self):
        # The rule uses >=, so a later exact tie is hired.
        values = {"a": 5.0, "b": 1.0, "c": 5.0, "d": 1.0, "e": 1.0, "f": 1.0,
                  "g": 1.0, "h": 1.0}
        order = list("abcdefgh")
        fn, result = run(values, order, 1)
        assert result.selected == frozenset({"c"})


class TestTwoSegments:
    def test_second_segment_thresholds_on_marginal(self):
        # Coverage function: overlap makes the second segment's marginals
        # differ from raw values — the per-segment oracle must score
        # f(T_1 + a), not f({a}).
        fn = CoverageFunction(
            {
                "a1": {1, 2},      # segment 1 window
                "a2": {1, 2, 3},   # segment 1 hire zone
                "b1": {1, 2, 3},   # segment 2 window: marginal 0 given a2
                "b2": {4},         # segment 2 hire zone: marginal 1
            }
        )
        order = ["a1", "a2", "b1", "b2"]
        # Segments: [a1, a2], [b1, b2]; window per segment = floor(2/e) = 0
        # -> no observation, threshold = current value (clamp).
        fn2, result = run(fn, order, 2)
        # Segment 1: threshold = f(empty) = 0; a1 hired (f({a1}) = 2 >= 0).
        assert "a1" in result.selected
        # Segment 2: base {a1}; b1 arrives: f({a1, b1}) = 3 >= 3? current
        # value 2, clamped threshold 2; f({a1,b1}) = 3 >= 2: b1 hired.
        assert "b1" in result.selected
        assert result.hires == 2

    def test_one_hire_per_segment_even_with_room(self):
        values = {f"s{i}": 1.0 for i in range(8)}
        order = [f"s{i}" for i in range(8)]
        fn, result = run(values, order, 2)
        assert result.hires <= 2
        for t in result.traces:
            picked_in_segment = [
                x for x in result.selected
                if t.start <= order.index(x) < t.end
            ]
            assert len(picked_in_segment) <= 1


class TestClamp:
    def test_clamp_prevents_value_decrease(self):
        # With an additive function the clamp is invisible, but the
        # recorded gains must never be negative even on adversarial
        # orders.
        values = {f"s{i}": float((i * 7) % 5) for i in range(12)}
        order = [f"s{i}" for i in range(12)]
        fn, result = run(values, order, 4)
        for t in result.traces:
            assert t.gain >= 0.0

    def test_empty_window_hires_first_feasible(self):
        # Segment length 1 -> window floor(1/e) = 0; the clamped
        # threshold equals the current value, so the arrival is hired
        # whenever its marginal is non-negative (always, monotone).
        values = {"a": 0.0, "b": 0.0, "c": 0.0}
        order = ["a", "b", "c"]
        fn, result = run(values, order, 3)
        assert result.selected == frozenset({"a", "b", "c"})


class TestSegmentGeometry:
    def test_window_is_l_over_e(self):
        values = {f"s{i}": 1.0 for i in range(30)}
        order = [f"s{i}" for i in range(30)]
        fn, result = run(values, order, 3)
        for t in result.traces:
            length = t.end - t.start
            assert t.observe_until - t.start == int(math.floor(length / math.e))

    def test_all_arrivals_covered_by_segments(self):
        values = {f"s{i}": 1.0 for i in range(17)}
        order = [f"s{i}" for i in range(17)]
        fn, result = run(values, order, 5)
        covered = set()
        for t in result.traces:
            covered |= set(range(t.start, t.end))
        assert covered == set(range(17))
