"""SecretaryStream and the no-peeking arrival oracle."""

import numpy as np
import pytest

from repro.core.functions import AdditiveFunction
from repro.errors import OracleError
from repro.secretary.stream import ArrivalOracle, SecretaryStream


def utility():
    return AdditiveFunction({f"s{i}": float(i) for i in range(6)})


class TestArrivalOracle:
    def test_unseen_query_raises(self):
        oracle = ArrivalOracle(utility())
        with pytest.raises(OracleError):
            oracle({"s0"})

    def test_revealed_query_allowed(self):
        oracle = ArrivalOracle(utility())
        oracle.reveal("s3")
        assert oracle({"s3"}) == 3.0

    def test_partial_reveal_still_blocks_hidden(self):
        oracle = ArrivalOracle(utility())
        oracle.reveal("s3")
        with pytest.raises(OracleError):
            oracle({"s3", "s4"})

    def test_empty_set_always_allowed(self):
        oracle = ArrivalOracle(utility())
        assert oracle(frozenset()) == 0.0

    def test_arrived_property(self):
        oracle = ArrivalOracle(utility())
        oracle.reveal("s0")
        assert oracle.arrived == frozenset({"s0"})


class TestSecretaryStream:
    def test_stream_covers_ground_set(self):
        stream = SecretaryStream(utility(), rng=0)
        seen = list(stream)
        assert frozenset(seen) == utility().ground_set
        assert len(seen) == 6

    def test_oracle_reveals_in_order(self):
        stream = SecretaryStream(utility(), rng=1)
        it = iter(stream)
        first = next(it)
        assert stream.oracle({first}) >= 0.0  # allowed
        # Second element has not arrived yet.
        remaining = [e for e in stream.order if e != first]
        with pytest.raises(OracleError):
            stream.oracle({remaining[0]})

    def test_explicit_order(self):
        order = [f"s{i}" for i in range(6)]
        stream = SecretaryStream(utility(), order=order)
        assert list(stream) == order

    def test_explicit_order_must_match_ground(self):
        with pytest.raises(OracleError):
            SecretaryStream(utility(), order=["s0", "s1"])

    def test_seed_determinism(self):
        s1 = SecretaryStream(utility(), rng=42)
        s2 = SecretaryStream(utility(), rng=42)
        assert s1.order == s2.order

    def test_orders_vary_across_seeds(self):
        orders = {tuple(SecretaryStream(utility(), rng=s).order) for s in range(20)}
        assert len(orders) > 1

    def test_permutation_is_roughly_uniform(self):
        # Each element should land in position 0 about 1/6 of the time.
        counts = {e: 0 for e in utility().ground_set}
        trials = 1200
        for s in range(trials):
            stream = SecretaryStream(utility(), rng=s)
            counts[stream.order[0]] += 1
        expected = trials / 6
        for c in counts.values():
            assert abs(c - expected) < 5 * np.sqrt(expected)

    def test_peek_remaining_count(self):
        stream = SecretaryStream(utility(), rng=3)
        assert stream.peek_remaining_count() == 6
        it = iter(stream)
        next(it)
        assert stream.peek_remaining_count() == 5

    def test_len(self):
        assert len(SecretaryStream(utility(), rng=0)) == 6
