"""Online processor selection — the Chapter 2 <-> Chapter 3 bridge."""

import math

import pytest

from repro.core.submodular import check_monotone, check_submodular
from repro.errors import InvalidInstanceError
from repro.rng import as_generator, spawn
from repro.scheduling.instance import Job
from repro.scheduling.intervals import AwakeInterval
from repro.secretary.online_scheduling import (
    OnlineSelectionResult,
    ProcessorMarket,
    ProcessorUtility,
    online_processor_selection,
)


def small_market():
    offers = {
        "p0": (AwakeInterval("p0", 0, 2),),
        "p1": (AwakeInterval("p1", 0, 1),),
        "p2": (AwakeInterval("p2", 3, 4),),
    }
    jobs = (
        Job("a", {("p0", 0), ("p1", 0)}),
        Job("b", {("p0", 1)}),
        Job("c", {("p2", 3)}, value=5.0),
        Job("d", {("p2", 4), ("p1", 1)}, value=2.0),
    )
    return ProcessorMarket(offers=offers, jobs=jobs)


def random_market(seed, n_procs=20, n_jobs=15, horizon=10):
    gen = as_generator(seed)
    offers = {}
    for i in range(n_procs):
        start = int(gen.integers(horizon - 3))
        offers[f"p{i}"] = (AwakeInterval(f"p{i}", start, start + 2),)
    jobs = []
    for j in range(n_jobs):
        slots = set()
        for _ in range(3):
            p = f"p{int(gen.integers(n_procs))}"
            iv = offers[p][0]
            slots.add((p, int(gen.integers(iv.start, iv.end + 1))))
        jobs.append(Job(f"j{j}", frozenset(slots)))
    return ProcessorMarket(offers=offers, jobs=tuple(jobs))


class TestMarketValidation:
    def test_valid(self):
        small_market()

    def test_interval_processor_mismatch(self):
        with pytest.raises(InvalidInstanceError):
            ProcessorMarket(
                offers={"p0": (AwakeInterval("zz", 0, 1),)},
                jobs=(),
            )

    def test_unknown_processor_in_job(self):
        with pytest.raises(InvalidInstanceError):
            ProcessorMarket(
                offers={"p0": (AwakeInterval("p0", 0, 1),)},
                jobs=(Job("a", {("zz", 0)}),),
            )

    def test_slots_of(self):
        market = small_market()
        assert market.slots_of("p1") == frozenset({("p1", 0), ("p1", 1)})


class TestProcessorUtility:
    def test_values(self):
        util = ProcessorUtility(small_market())
        assert util({"p0"}) == 2.0       # jobs a, b
        assert util({"p2"}) == 2.0       # jobs c, d
        assert util({"p0", "p2"}) == 4.0
        assert util(set()) == 0.0

    def test_weighted_values(self):
        util = ProcessorUtility(small_market(), weighted=True)
        assert util({"p2"}) == 7.0      # c (5) + d (2)
        assert util({"p1"}) == 3.0      # a (1) + d (2)

    def test_submodular_and_monotone(self):
        util = ProcessorUtility(small_market())
        assert check_submodular(util)
        assert check_monotone(util)

    def test_weighted_submodular(self):
        util = ProcessorUtility(small_market(), weighted=True)
        assert check_submodular(util)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_market_utility_submodular(self, seed):
        util = ProcessorUtility(random_market(seed, n_procs=6, n_jobs=6))
        assert check_submodular(util, exhaustive_limit=6)


class TestOnlineSelection:
    def test_hires_at_most_k(self):
        result = online_processor_selection(small_market(), 2, rng=0)
        assert len(result.hired) <= 2

    def test_schedule_consistent_with_hired(self):
        result = online_processor_selection(small_market(), 2, rng=1)
        market = small_market()
        hired_slots = set()
        for p in result.hired:
            hired_slots |= market.slots_of(p)
        for job_id, slot in result.scheduled_jobs.items():
            assert slot in hired_slots

    def test_utility_matches_assignment_count(self):
        result = online_processor_selection(small_market(), 3, rng=2)
        assert result.utility == float(len(result.scheduled_jobs))

    def test_weighted_mode(self):
        market = small_market()
        result = online_processor_selection(market, 1, weighted=True, rng=3)
        values = {j.id: j.value for j in market.jobs}
        assert result.utility == pytest.approx(
            sum(values[j] for j in result.scheduled_jobs)
        )

    def test_explicit_order(self):
        market = small_market()
        result = online_processor_selection(
            market, 2, order=["p0", "p1", "p2"], rng=4
        )
        assert isinstance(result, OnlineSelectionResult)

    def test_competitive_over_trials(self):
        # Expected jobs scheduled >= hindsight optimum / (7e) — measured
        # far above on random markets.
        k, trials = 4, 40
        master = as_generator(5)
        total, opt_total = 0.0, 0.0
        for child in spawn(master, trials):
            market = random_market(child)
            util = ProcessorUtility(market)
            # Hindsight greedy benchmark.
            chosen: set = set()
            value = 0.0
            for _ in range(k):
                best, gain = None, 0.0
                for p in util.ground_set - chosen:
                    g = util.value(frozenset(chosen | {p})) - value
                    if g > gain:
                        best, gain = p, g
                if best is None:
                    break
                chosen.add(best)
                value = util.value(frozenset(chosen))
            result = online_processor_selection(market, k, rng=child)
            total += result.utility
            opt_total += value
        assert total / opt_total >= 1.0 / (7 * math.e)
