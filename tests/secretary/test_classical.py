"""Classical 1/e stopping rule."""

import math

import pytest

from repro.rng import as_generator, random_permutation
from repro.secretary.classical import (
    best_among_stream,
    classical_secretary,
    dynkin_threshold,
)


class TestThreshold:
    def test_small_n(self):
        assert dynkin_threshold(0) == 0
        assert dynkin_threshold(1) == 0

    def test_approaches_n_over_e(self):
        assert dynkin_threshold(100) == int(math.floor(100 / math.e))
        assert dynkin_threshold(1000) == 367


class TestClassicalSecretary:
    def test_empty(self):
        assert classical_secretary([]) is None

    def test_picks_first_record_after_window(self):
        arrivals = [("a", 5.0), ("b", 1.0), ("c", 7.0), ("d", 9.0)]
        # window = floor(4/e) = 1; best in window = 5; first later > 5 is c.
        assert classical_secretary(arrivals) == "c"

    def test_none_when_best_in_window(self):
        arrivals = [("best", 10.0), ("a", 1.0), ("b", 2.0)]
        assert classical_secretary(arrivals, observe=1) is None

    def test_observe_override(self):
        arrivals = [("a", 5.0), ("b", 9.0), ("c", 7.0)]
        assert classical_secretary(arrivals, observe=0) == "a"
        assert classical_secretary(arrivals, observe=2) is None

    def test_observe_clamped(self):
        arrivals = [("a", 5.0)]
        assert classical_secretary(arrivals, observe=99) is None

    def test_success_probability_near_one_over_e(self):
        # Empirically the rule hires the best with probability ~ 1/e.
        gen = as_generator(0)
        n, trials, hits = 30, 2000, 0
        values = [float(i) for i in range(n)]
        for _ in range(trials):
            perm = random_permutation(values, gen)
            arrivals = [(v, v) for v in perm]
            if classical_secretary(arrivals) == float(n - 1):
                hits += 1
        rate = hits / trials
        assert abs(rate - 1 / math.e) < 0.05


class TestBestAmongStream:
    def test_offline_materialisation(self):
        picked = best_among_stream(["a", "b", "c", "d"], {"a": 1, "b": 3, "c": 9, "d": 2}.get)
        assert picked in {"b", "c", "d"}

    def test_streaming_with_hint(self):
        items = ["a", "b", "c", "d"]
        score = {"a": 1.0, "b": 2.0, "c": 9.0, "d": 3.0}.get
        # Window = floor(4/e) = 1: observes only "a" (1.0); "b" (2.0)
        # is the first record after the window.
        assert best_among_stream(iter(items), score, n_hint=4) == "b"

    def test_streaming_no_pick(self):
        items = ["best", "a", "b"]
        score = {"best": 9.0, "a": 1.0, "b": 2.0}.get
        assert best_among_stream(iter(items), score, n_hint=3) is None
