"""Knapsack-constrained secretary: reduction lemma + online feasibility."""

import pytest

from repro.errors import InvalidInstanceError
from repro.rng import as_generator, spawn
from repro.secretary.knapsack_secretary import (
    knapsack_submodular_secretary,
    offline_knapsack_estimate,
    reduce_knapsacks_to_one,
)
from repro.secretary.stream import SecretaryStream
from repro.workloads.secretary_streams import additive_values, coverage_utility


class TestReduction:
    def test_max_over_scaled_knapsacks(self):
        weights = {"a": [2.0, 1.0], "b": [0.5, 3.0]}
        reduced = reduce_knapsacks_to_one(weights, [4.0, 6.0])
        assert reduced["a"] == pytest.approx(0.5)   # max(2/4, 1/6)
        assert reduced["b"] == pytest.approx(0.5)   # max(.5/4, 3/6)

    def test_single_knapsack_identity(self):
        reduced = reduce_knapsacks_to_one({"a": [3.0]}, [3.0])
        assert reduced["a"] == 1.0

    def test_feasible_in_reduced_is_feasible_originally(self):
        gen = as_generator(0)
        items = {f"i{j}": [float(gen.random()), float(gen.random()) * 2] for j in range(20)}
        caps = [1.0, 2.0]
        reduced = reduce_knapsacks_to_one(items, caps)
        # Any set with reduced weight <= 1 satisfies every knapsack.
        chosen = []
        load = 0.0
        for j, w in sorted(reduced.items()):
            if load + w <= 1.0:
                chosen.append(j)
                load += w
        for i, c in enumerate(caps):
            assert sum(items[j][i] for j in chosen) <= c + 1e-9

    def test_bad_capacities_rejected(self):
        with pytest.raises(InvalidInstanceError):
            reduce_knapsacks_to_one({"a": [1.0]}, [0.0])
        with pytest.raises(InvalidInstanceError):
            reduce_knapsacks_to_one({"a": [1.0]}, [])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(InvalidInstanceError):
            reduce_knapsacks_to_one({"a": [1.0, 2.0]}, [1.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidInstanceError):
            reduce_knapsacks_to_one({"a": [-1.0]}, [1.0])


class TestOfflineEstimate:
    def test_exact_on_single_item(self):
        fn, values = additive_values(1, rng=0)
        item = next(iter(fn.ground_set))
        est = offline_knapsack_estimate(fn, {item: 0.5}, [item])
        assert est == pytest.approx(values[item])

    def test_zero_when_nothing_fits(self):
        fn, _ = additive_values(3, rng=1)
        weights = {e: 2.0 for e in fn.ground_set}
        assert offline_knapsack_estimate(fn, weights, sorted(fn.ground_set)) == 0.0

    def test_at_least_best_singleton(self):
        fn, values = additive_values(10, rng=2)
        weights = {e: 0.9 for e in fn.ground_set}
        est = offline_knapsack_estimate(fn, weights, sorted(fn.ground_set))
        assert est >= max(values.values()) - 1e-9

    def test_constant_factor_of_opt_additive(self):
        # For additive f and unit weights the knapsack optimum is the sum
        # of values of items fitting; the estimate must be >= OPT/3.
        gen = as_generator(3)
        fn, values = additive_values(12, rng=3)
        weights = {e: float(0.2 + 0.3 * gen.random()) for e in fn.ground_set}
        # Brute-force small knapsack optimum by DP-ish enumeration.
        items = sorted(fn.ground_set)
        best = 0.0
        import itertools
        for r in range(len(items) + 1):
            for combo in itertools.combinations(items, r):
                if sum(weights[e] for e in combo) <= 1.0:
                    best = max(best, sum(values[e] for e in combo))
        est = offline_knapsack_estimate(fn, weights, items)
        assert est >= best / 3 - 1e-9


class TestOnlineAlgorithm:
    @pytest.mark.parametrize("seed", range(10))
    def test_selection_fits_single_knapsack(self, seed):
        fn, _ = additive_values(60, rng=seed)
        gen = as_generator(seed + 100)
        weights = {e: float(0.05 + 0.4 * gen.random()) for e in fn.ground_set}
        stream = SecretaryStream(fn, rng=seed + 200)
        result = knapsack_submodular_secretary(stream, weights, 1.0, rng=seed + 300)
        assert sum(weights[e] for e in result.selected) <= 1.0 + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_selection_fits_all_knapsacks(self, seed):
        fn = coverage_utility(40, 20, rng=seed)
        gen = as_generator(seed + 1)
        weights = {
            e: [float(0.1 + 0.4 * gen.random()), float(0.1 + 0.8 * gen.random())]
            for e in fn.ground_set
        }
        caps = [1.5, 2.0]
        stream = SecretaryStream(fn, rng=seed + 2)
        result = knapsack_submodular_secretary(stream, weights, caps, rng=seed + 3)
        for i, c in enumerate(caps):
            assert sum(weights[e][i] for e in result.selected) <= c + 1e-9

    def test_missing_weights_rejected(self):
        fn, _ = additive_values(5, rng=0)
        stream = SecretaryStream(fn, rng=1)
        with pytest.raises(InvalidInstanceError):
            knapsack_submodular_secretary(stream, {"s0": 0.1}, 1.0, rng=2)

    def test_both_strategies_occur(self):
        fn, _ = additive_values(40, rng=5)
        weights = {e: 0.2 for e in fn.ground_set}
        strategies = set()
        for seed in range(16):
            stream = SecretaryStream(fn, rng=seed)
            result = knapsack_submodular_secretary(stream, weights, 1.0, rng=seed)
            strategies.add(result.strategy)
        assert strategies == {"best-singleton", "density"}

    def test_positive_expected_value(self):
        master = as_generator(11)
        total = 0.0
        trials = 30
        for child in spawn(master, trials):
            fn, values = additive_values(60, rng=child)
            weights = {e: 0.25 for e in fn.ground_set}
            stream = SecretaryStream(fn, rng=child)
            result = knapsack_submodular_secretary(stream, weights, 1.0, rng=child)
            total += fn.value(result.selected)
        assert total / trials > 0.0
