"""Section 3.5: hidden-set hardness construction and the O(sqrt n) rule."""

import math

import pytest

from repro.core.submodular import check_monotone
from repro.errors import BudgetError
from repro.rng import as_generator, spawn
from repro.secretary.stream import SecretaryStream
from repro.secretary.subadditive import HiddenSetFunction, subadditive_secretary


def ground(n):
    return [f"x{i}" for i in range(n)]


class TestHiddenSetFunction:
    def test_empty_set_value_is_one(self):
        fn = HiddenSetFunction(ground(20), 5, 2.0, rng=0)
        assert fn.value(frozenset()) == 1.0

    def test_hidden_set_has_high_value(self):
        fn = HiddenSetFunction(ground(50), 10, 2.0, rng=1)
        assert fn.value(fn.hidden) == fn.optimum()
        assert fn.optimum() >= len(fn.hidden) / 2.0

    def test_disjoint_queries_leak_nothing(self):
        fn = HiddenSetFunction(ground(50), 10, 2.0, rng=2)
        outside = frozenset(fn.ground_set - fn.hidden)
        assert fn.value(outside) == 1.0

    def test_monotone(self):
        fn = HiddenSetFunction(ground(8), 3, 1.5, rng=3)
        assert check_monotone(fn)

    def test_subadditive(self):
        fn = HiddenSetFunction(ground(10), 4, 1.5, rng=4)
        items = sorted(fn.ground_set)
        import itertools
        for a_size in range(4):
            for b_size in range(4):
                a = frozenset(items[:a_size])
                b = frozenset(items[5 : 5 + b_size])
                assert fn.value(a) + fn.value(b) >= fn.value(a | b) - 1e-9

    def test_almost_submodular_proposition_3_5_3(self):
        # f(A) + f(B) >= f(A|B) + f(A&B) - 2 for all A, B (small n sweep).
        fn = HiddenSetFunction(ground(7), 3, 1.5, rng=5)
        items = sorted(fn.ground_set)
        import itertools
        subsets = []
        for r in range(len(items) + 1):
            subsets.extend(frozenset(c) for c in itertools.combinations(items, r))
        for a in subsets:
            for b in subsets:
                lhs = fn.value(a) + fn.value(b)
                rhs = fn.value(a | b) + fn.value(a & b) - 2.0
                assert lhs >= rhs - 1e-9

    def test_query_counter(self):
        fn = HiddenSetFunction(ground(10), 3, 1.0, rng=6)
        before = fn.query_count
        fn.value(frozenset())
        assert fn.query_count == before + 1

    def test_bad_parameters_rejected(self):
        with pytest.raises(BudgetError):
            HiddenSetFunction([], 1, 1.0)
        with pytest.raises(BudgetError):
            HiddenSetFunction(ground(5), 0, 1.0)
        with pytest.raises(BudgetError):
            HiddenSetFunction(ground(5), 2, 0.0)

    def test_hidden_set_never_empty(self):
        # Even when the binomial sample is empty we force one element.
        for seed in range(20):
            fn = HiddenSetFunction(ground(30), 1, 1.0, rng=seed)
            assert len(fn.hidden) >= 1


class TestInformationHiding:
    def test_blind_queries_cannot_find_hidden_set(self):
        # A simulated "algorithm" making few random size-k queries sees
        # value > 1 only rarely; its best guess stays near value 1 while
        # OPT = k/r. This is the mechanism of Theorem 3.5.1.
        n, k = 400, 20
        r = 10.0
        gen = as_generator(7)
        fn = HiddenSetFunction(ground(n), k, r, rng=8)
        informative = 0
        queries = 50
        elements = sorted(fn.ground_set)
        for _ in range(queries):
            idx = gen.choice(n, size=k, replace=False)
            q = frozenset(elements[i] for i in idx)
            if fn.value(q) > 1.0:
                informative += 1
        assert informative <= queries * 0.2  # almost all answers are 1
        assert fn.optimum() >= 2.0           # yet OPT is large


class TestSubadditiveSecretary:
    def test_hires_at_most_k(self):
        fn = HiddenSetFunction(ground(64), 8, 2.0, rng=0)
        stream = SecretaryStream(fn, rng=1)
        result = subadditive_secretary(stream, 8, rng=2)
        assert len(result.selected) <= 8

    def test_bad_k_rejected(self):
        fn = HiddenSetFunction(ground(10), 2, 1.0, rng=3)
        stream = SecretaryStream(fn, rng=4)
        with pytest.raises(BudgetError):
            subadditive_secretary(stream, 0)

    def test_both_strategies_occur(self):
        fn = HiddenSetFunction(ground(36), 6, 2.0, rng=5)
        strategies = set()
        for seed in range(16):
            stream = SecretaryStream(fn, rng=seed)
            result = subadditive_secretary(stream, 6, rng=seed)
            strategies.add(result.strategy.split("-")[0])
        assert strategies == {"best", "segment"}

    def test_sqrt_n_competitiveness_empirical(self):
        # With k = sqrt(n), expected value >= OPT / O(sqrt(n)).
        n = 64
        k = int(math.isqrt(n))
        master = as_generator(42)
        total_ratio = 0.0
        trials = 60
        for child in spawn(master, trials):
            fn = HiddenSetFunction(ground(n), k, 1.0, rng=child)
            stream = SecretaryStream(fn, rng=child)
            result = subadditive_secretary(stream, k, rng=child)
            total_ratio += fn.value(result.selected) / fn.optimum()
        mean = total_ratio / trials
        assert mean >= 1.0 / (4.0 * math.sqrt(n))
