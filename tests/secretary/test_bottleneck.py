"""Section 3.6 bottleneck rule."""

import math

import pytest

from repro.core.functions import AdditiveFunction
from repro.errors import BudgetError
from repro.rng import as_generator, spawn
from repro.secretary.bottleneck import bottleneck_secretary
from repro.secretary.stream import SecretaryStream


def make_stream(values, rng):
    fn = AdditiveFunction(values)
    return SecretaryStream(fn, rng=rng)


class TestBasics:
    def test_hires_at_most_k(self):
        values = {f"s{i}": float(i) for i in range(30)}
        stream = make_stream(values, rng=0)
        result = bottleneck_secretary(stream, values, 3)
        assert len(result.selected) <= 3

    def test_bad_k_rejected(self):
        values = {"a": 1.0}
        stream = make_stream(values, rng=0)
        with pytest.raises(BudgetError):
            bottleneck_secretary(stream, values, 0)

    def test_min_value_zero_when_under_hired(self):
        # Tiny stream where the rule cannot fill the quota.
        values = {"a": 3.0, "b": 2.0, "c": 1.0}
        stream = make_stream(values, rng=1)
        result = bottleneck_secretary(stream, values, 3)
        if len(result.selected) < 3:
            assert result.min_value == 0.0

    def test_hired_top_k_flag_consistent(self):
        values = {f"s{i}": float(i) for i in range(20)}
        top2 = {"s19", "s18"}
        for seed in range(10):
            stream = make_stream(values, rng=seed)
            result = bottleneck_secretary(stream, values, 2)
            assert result.hired_top_k == (set(result.selected) == top2)

    def test_threshold_from_observation_window(self):
        # Explicit order: high value first means threshold blocks weaker
        # later arrivals.
        values = {"a": 10.0, "b": 1.0, "c": 2.0, "d": 3.0}
        fn = AdditiveFunction(values)
        stream = SecretaryStream(fn, order=["a", "b", "c", "d"])
        result = bottleneck_secretary(stream, values, 2)
        # Window = n//k = 2: observes a (10) and b; nothing later beats 10.
        assert result.selected == frozenset()
        assert result.threshold == 10.0


class TestSuccessProbability:
    def test_k1_success_rate_near_1_over_e(self):
        values = {f"s{i}": float(i) for i in range(25)}
        master = as_generator(0)
        trials, hits = 800, 0
        for child in spawn(master, trials):
            stream = make_stream(values, rng=child)
            result = bottleneck_secretary(stream, values, 1)
            hits += result.hired_top_k
        rate = hits / trials
        assert abs(rate - 1 / math.e) < 0.06

    def test_k2_success_rate_at_least_theorem_bound(self):
        # Theorem 3.6.1: probability >= 1/e^{2k} = e^-4 ~ 0.018 for k=2.
        values = {f"s{i}": float(i) for i in range(24)}
        master = as_generator(1)
        trials, hits = 600, 0
        for child in spawn(master, trials):
            stream = make_stream(values, rng=child)
            result = bottleneck_secretary(stream, values, 2)
            hits += result.hired_top_k
        rate = hits / trials
        assert rate >= math.exp(-4)

    def test_k3_success_rate_at_least_theorem_bound(self):
        values = {f"s{i}": float(i) for i in range(30)}
        master = as_generator(2)
        trials, hits = 600, 0
        for child in spawn(master, trials):
            stream = make_stream(values, rng=child)
            result = bottleneck_secretary(stream, values, 3)
            hits += result.hired_top_k
        assert hits / trials >= math.exp(-6)
