"""Robust (gamma-oblivious) top-k secretary of Section 3.6."""

import math

import pytest

from repro.core.functions import AdditiveFunction
from repro.errors import BudgetError
from repro.rng import as_generator, spawn
from repro.secretary.robust import gamma_objective, robust_topk_secretary
from repro.secretary.stream import SecretaryStream


def make_stream(values, rng):
    return SecretaryStream(AdditiveFunction(values), rng=rng)


class TestGammaObjective:
    def test_prefix_weighting(self):
        values = {"a": 5.0, "b": 3.0, "c": 1.0}
        sel = frozenset(values)
        assert gamma_objective(values, sel, [1, 0, 0]) == 5.0
        assert gamma_objective(values, sel, [1, 1, 1]) == 9.0
        assert gamma_objective(values, sel, [2, 1, 0]) == 13.0

    def test_short_selection(self):
        values = {"a": 5.0, "b": 3.0}
        assert gamma_objective(values, frozenset({"b"}), [1, 1, 1]) == 3.0

    def test_increasing_gamma_rejected(self):
        with pytest.raises(BudgetError):
            gamma_objective({"a": 1.0}, frozenset({"a"}), [0, 1])

    def test_negative_gamma_rejected(self):
        with pytest.raises(BudgetError):
            gamma_objective({"a": 1.0}, frozenset({"a"}), [-1])


class TestRobustSecretary:
    def test_hires_at_most_k(self):
        values = {f"s{i}": float(i) for i in range(40)}
        result = robust_topk_secretary(make_stream(values, 0), values, 5)
        assert result.hires <= 5
        assert len(result.per_segment) == 5

    def test_bad_k(self):
        values = {"a": 1.0}
        with pytest.raises(BudgetError):
            robust_topk_secretary(make_stream(values, 0), values, 0)

    def test_at_most_one_hire_per_segment(self):
        values = {f"s{i}": float(i % 13) for i in range(60)}
        result = robust_topk_secretary(make_stream(values, 1), values, 6)
        hired = [h for h in result.per_segment if h is not None]
        assert len(hired) == len(set(hired)) == result.hires

    def test_oblivious_guarantee_across_gammas(self):
        # One run must be simultaneously competitive for several gammas.
        n, k, trials = 60, 4, 120
        values = {f"s{i}": float(i + 1) for i in range(n)}
        ranked = sorted(values.values(), reverse=True)
        gammas = {
            "max": [1, 0, 0, 0],
            "sum": [1, 1, 1, 1],
            "linear": [4, 3, 2, 1],
        }
        opts = {
            name: sum(w * v for w, v in zip(g, ranked)) for name, g in gammas.items()
        }
        totals = {name: 0.0 for name in gammas}
        master = as_generator(7)
        for child in spawn(master, trials):
            result = robust_topk_secretary(make_stream(values, child), values, k)
            for name, g in gammas.items():
                totals[name] += gamma_objective(values, result.selected, g)
        for name in gammas:
            ratio = totals[name] / (trials * opts[name])
            # Constant-competitive simultaneously for all gammas.
            assert ratio >= 0.15, f"gamma={name} ratio={ratio}"

    def test_top1_rate_near_classical(self):
        # k=1 degenerates to the classical rule.
        n = 25
        values = {f"s{i}": float(i) for i in range(n)}
        hits = 0
        trials = 800
        master = as_generator(8)
        for child in spawn(master, trials):
            result = robust_topk_secretary(make_stream(values, child), values, 1)
            hits += f"s{n-1}" in result.selected
        assert abs(hits / trials - 1 / math.e) < 0.06
