"""Secretary baselines: legality and expected-value ordering."""

import pytest

from repro.errors import BudgetError
from repro.rng import as_generator, spawn
from repro.secretary.baselines import (
    first_k_baseline,
    greedy_no_observation_baseline,
    random_k_baseline,
)
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import monotone_submodular_secretary
from repro.workloads.secretary_streams import additive_values, coverage_utility


class TestLegality:
    def test_first_k(self):
        fn = coverage_utility(30, 12, rng=0)
        stream = SecretaryStream(fn, rng=1)
        result = first_k_baseline(stream, 5)
        assert result.selected == frozenset(stream.order[:5])

    def test_random_k_size(self):
        fn = coverage_utility(30, 12, rng=2)
        stream = SecretaryStream(fn, rng=3)
        result = random_k_baseline(stream, 5, rng=4)
        assert len(result.selected) == 5

    def test_random_k_larger_than_n(self):
        fn, _ = additive_values(3, rng=5)
        stream = SecretaryStream(fn, rng=6)
        result = random_k_baseline(stream, 10, rng=7)
        assert len(result.selected) == 3

    def test_greedy_no_obs_at_most_k(self):
        fn = coverage_utility(30, 12, rng=8)
        stream = SecretaryStream(fn, rng=9)
        result = greedy_no_observation_baseline(stream, 4)
        assert result.hires <= 4

    @pytest.mark.parametrize(
        "baseline", [first_k_baseline, greedy_no_observation_baseline]
    )
    def test_bad_k(self, baseline):
        fn, _ = additive_values(5, rng=10)
        stream = SecretaryStream(fn, rng=11)
        with pytest.raises(BudgetError):
            baseline(stream, 0)

    def test_no_peeking(self):
        # All baselines run against the arrival oracle without error.
        fn = coverage_utility(20, 10, rng=12)
        greedy_no_observation_baseline(SecretaryStream(fn, rng=13), 3)


class TestValueOrdering:
    def test_algorithm1_beats_first_k_on_additive(self):
        # First-k hires a uniform sample; Algorithm 1's per-segment
        # thresholds must do better in expectation on skewed values.
        trials = 80
        master = as_generator(0)
        alg_total, first_total = 0.0, 0.0
        for child in spawn(master, trials):
            fn, _ = additive_values(100, distribution="lognormal", rng=child)
            s1 = SecretaryStream(fn, rng=child)
            alg_total += fn.value(monotone_submodular_secretary(s1, 5).selected)
            s2 = SecretaryStream(fn, rng=child)
            first_total += fn.value(first_k_baseline(s2, 5).selected)
        assert alg_total > first_total

    def test_random_k_matches_lemma_3_2_3_scale(self):
        # E[f(random k-subset)] >= (k/n) f(ground) for submodular f
        # (Lemma 3.2.3's sampling bound); check the measured mean.
        trials = 60
        k, n = 6, 60
        master = as_generator(1)
        total, full_total = 0.0, 0.0
        for child in spawn(master, trials):
            fn = coverage_utility(n, 20, rng=child)
            stream = SecretaryStream(fn, rng=child)
            total += fn.value(random_k_baseline(stream, k, rng=child).selected)
            full_total += fn.value(fn.ground_set)
        assert total / trials >= (k / n) * (full_total / trials) - 1e-9
