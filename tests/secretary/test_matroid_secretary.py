"""Algorithm 3: matroid feasibility invariants and guess-pool behaviour."""

import pytest

from repro.errors import BudgetError
from repro.matroids import GraphicMatroid, PartitionMatroid, UniformMatroid
from repro.rng import as_generator, spawn
from repro.secretary.matroid_secretary import matroid_submodular_secretary
from repro.secretary.stream import SecretaryStream
from repro.workloads.secretary_streams import coverage_utility, cut_utility


def partition_over(fn, blocks_count=4, capacity=2):
    blocks = {e: hash(e) % blocks_count for e in fn.ground_set}
    return PartitionMatroid(blocks, {b: capacity for b in range(blocks_count)})


class TestFeasibilityInvariant:
    @pytest.mark.parametrize("seed", range(10))
    def test_selection_always_independent_single_matroid(self, seed):
        fn = coverage_utility(48, 20, rng=seed)
        matroid = partition_over(fn)
        stream = SecretaryStream(fn, rng=seed + 100)
        result = matroid_submodular_secretary(stream, [matroid], rng=seed + 200)
        assert matroid.is_independent(result.selected)

    @pytest.mark.parametrize("seed", range(6))
    def test_selection_independent_in_all_matroids(self, seed):
        fn = coverage_utility(48, 20, rng=seed)
        m1 = partition_over(fn, blocks_count=4, capacity=2)
        m2 = UniformMatroid(fn.ground_set, k=3)
        stream = SecretaryStream(fn, rng=seed + 10)
        result = matroid_submodular_secretary(stream, [m1, m2], rng=seed + 20)
        assert m1.is_independent(result.selected)
        assert m2.is_independent(result.selected)

    def test_uniform_matroid_caps_hires(self):
        fn = coverage_utility(40, 15, rng=0)
        m = UniformMatroid(fn.ground_set, k=2)
        for seed in range(8):
            stream = SecretaryStream(fn, rng=seed)
            result = matroid_submodular_secretary(stream, [m], rng=seed)
            assert len(result.selected) <= 2


class TestGuessPool:
    def test_explicit_small_k_uses_singleton(self):
        fn = coverage_utility(40, 15, rng=1)
        m = UniformMatroid(fn.ground_set, k=8)
        stream = SecretaryStream(fn, rng=2)
        result = matroid_submodular_secretary(stream, [m], rng=3, k_estimate=1)
        assert result.strategy == "best-singleton"
        assert len(result.selected) <= 1

    def test_explicit_large_k_uses_segments(self):
        fn = coverage_utility(60, 25, rng=4)
        m = UniformMatroid(fn.ground_set, k=16)
        stream = SecretaryStream(fn, rng=5)
        result = matroid_submodular_secretary(stream, [m], rng=6, k_estimate=8)
        assert result.strategy.startswith("segments")

    def test_invalid_k_estimate_rejected(self):
        fn = coverage_utility(20, 10, rng=7)
        m = UniformMatroid(fn.ground_set, k=4)
        stream = SecretaryStream(fn, rng=8)
        with pytest.raises(BudgetError):
            matroid_submodular_secretary(stream, [m], k_estimate=0)

    def test_no_matroids_rejected(self):
        fn = coverage_utility(20, 10, rng=9)
        stream = SecretaryStream(fn, rng=10)
        with pytest.raises(BudgetError):
            matroid_submodular_secretary(stream, [])

    def test_random_guess_reproducible(self):
        fn = coverage_utility(40, 15, rng=11)
        m = UniformMatroid(fn.ground_set, k=8)
        r1 = matroid_submodular_secretary(
            SecretaryStream(fn, rng=12), [m], rng=13
        )
        r2 = matroid_submodular_secretary(
            SecretaryStream(fn, rng=12), [m], rng=13
        )
        assert r1.selected == r2.selected


class TestGraphicMatroidScenario:
    def test_forest_selection_on_cut_function(self):
        gen = as_generator(0)
        # Utility over edges of a graph; matroid = forests of that graph.
        n_vertices = 8
        edges = {}
        i = 0
        for u in range(n_vertices):
            for v in range(u + 1, n_vertices):
                if gen.random() < 0.5:
                    edges[f"s{i}"] = (u, v)
                    i += 1
        fn = coverage_utility(len(edges), 12, rng=1)
        # Rename the coverage ground set to the edge ids (same size).
        assert fn.ground_set == frozenset(edges)
        matroid = GraphicMatroid(edges)
        stream = SecretaryStream(fn, rng=2)
        result = matroid_submodular_secretary(stream, [matroid], rng=3)
        assert matroid.is_independent(result.selected)


class TestPositiveValueAchieved:
    def test_nonzero_expected_value(self):
        # Over many seeds the algorithm should pick something valuable.
        values = []
        master = as_generator(99)
        for child in spawn(master, 30):
            fn = coverage_utility(48, 20, rng=child)
            m = partition_over(fn)
            stream = SecretaryStream(fn, rng=child)
            result = matroid_submodular_secretary(stream, [m], rng=child)
            values.append(fn.value(result.selected))
        assert sum(values) / len(values) > 0.0
