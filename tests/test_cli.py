"""CLI: end-to-end subcommand behaviour (in-process, no subprocess)."""

import json

import pytest

from repro.cli import main
from repro.io import dump_instance
from repro.workloads.jobs import random_multi_interval_instance


@pytest.fixture()
def instance_file(tmp_path):
    inst = random_multi_interval_instance(6, 2, 12, value_spread=3.0, rng=4)
    path = tmp_path / "inst.json"
    dump_instance(inst, str(path))
    return str(path), inst


class TestSolve:
    def test_outputs_schedule_json(self, instance_file, capsys):
        path, inst = instance_file
        assert main(["solve", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cost"] > 0
        assert payload["schedule"]["format"] == "repro-schedule/1"
        assert len(payload["schedule"]["assignment"]) == inst.n_jobs

    def test_methods(self, instance_file, capsys):
        path, _ = instance_file
        costs = {}
        for m in ("incremental", "lazy", "plain"):
            assert main(["solve", path, "--method", m]) == 0
            costs[m] = json.loads(capsys.readouterr().out)["cost"]
        assert max(costs.values()) == pytest.approx(min(costs.values()))

    def test_render_goes_to_stderr(self, instance_file, capsys):
        path, _ = instance_file
        assert main(["solve", path, "--render"]) == 0
        captured = capsys.readouterr()
        assert "legend:" in captured.err
        json.loads(captured.out)  # stdout stays pure JSON

    def test_missing_file_is_error(self, capsys):
        assert main(["solve", "/nonexistent.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestPrize:
    def test_bicriteria(self, instance_file, capsys):
        path, inst = instance_file
        target = 0.5 * inst.total_value()
        assert main(["prize", path, "--target", str(target)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["value"] >= 0.75 * target - 1e-9

    def test_exact(self, instance_file, capsys):
        path, inst = instance_file
        target = 0.5 * inst.total_value()
        assert main(["prize", path, "--target", str(target), "--exact"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["value"] >= target - 1e-9

    def test_unreachable_target_is_error(self, instance_file, capsys):
        path, inst = instance_file
        assert main(["prize", path, "--target", "999999"]) == 2
        assert "error" in capsys.readouterr().err


class TestDemoAndCheck:
    def test_demo(self, capsys):
        assert main(["demo", "--seed", "7", "--jobs", "5"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["instance"]["format"] == "repro-instance/1"
        assert "cost" in payload
        assert "legend:" in captured.err

    def test_check(self, instance_file, capsys):
        path, inst = instance_file
        assert main(["check", path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["n_jobs"] == inst.n_jobs

    def test_demo_reproducible(self, capsys):
        main(["demo", "--seed", "3"])
        first = json.loads(capsys.readouterr().out)
        main(["demo", "--seed", "3"])
        second = json.loads(capsys.readouterr().out)
        assert first == second


class TestSweep:
    def test_sweep_runs_a_task(self, capsys):
        assert main([
            "sweep", "--task", "secretary", "--families", "additive",
            "--grid", "20x2x0", "--methods", "monotone", "--trials", "1",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggregate"][0]["task"] == "secretary"

    def test_sweep_verbose_progress_lines(self, capsys):
        assert main([
            "sweep", "--task", "secretary", "--families", "additive",
            "--grid", "15x2x0", "--methods", "monotone,classical",
            "--trials", "2", "--verbose",
        ]) == 0
        err = capsys.readouterr().err
        assert "[1/4]" in err and "[4/4]" in err
        assert "secretary/additive" in err

    def test_sweep_runs_process_qualified_family(self, capsys):
        assert main([
            "sweep", "--task", "secretary", "--families", "additive@sorted_desc",
            "--grid", "20x2x0", "--methods", "monotone", "--trials", "1",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["aggregate"][0]["family"] == "additive@sorted_desc"

    def test_unknown_family_is_a_clean_error(self, capsys):
        assert main(["sweep", "--families", "no-such-family"]) == 2
        err = capsys.readouterr().err
        assert "error" in err and "no-such-family" in err

    def test_unknown_task_is_a_clean_error(self, capsys):
        assert main(["sweep", "--task", "no-such-task"]) == 2
        assert "no-such-task" in capsys.readouterr().err

    def test_unknown_method_is_a_clean_error(self, capsys):
        assert main(["sweep", "--methods", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_malformed_grid_is_a_clean_error(self, capsys):
        assert main(["sweep", "--grid", "20x3"]) == 2
        assert "bad grid cell" in capsys.readouterr().err

    def test_zero_trials_is_a_clean_error(self, capsys):
        assert main(["sweep", "--trials", "0"]) == 2
        assert "trials" in capsys.readouterr().err
