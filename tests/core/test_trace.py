"""Greedy trace bookkeeping: phases and per-phase cost accounting."""

import math

import pytest

from repro.core.trace import GreedyResult, GreedyStep, phase_of


class TestPhaseOf:
    def test_phase_one_at_zero_utility(self):
        assert phase_of(0.0, 100.0) == 1

    def test_phase_boundaries(self):
        # utility 50/100 => remaining 1/2 => start of phase 2.
        assert phase_of(50.0, 100.0) == 2
        # utility 75/100 => remaining 1/4 => phase 3.
        assert phase_of(75.0, 100.0) == 3
        # just below 50 stays in phase 1.
        assert phase_of(49.9, 100.0) == 1

    def test_target_reached_clamps(self):
        assert phase_of(100.0, 100.0) == 63
        assert phase_of(150.0, 100.0) == 63

    def test_zero_target(self):
        assert phase_of(0.0, 0.0) == 1


def make_result():
    steps = [
        GreedyStep(index="a", cost=1.0, gain=40.0, utility_after=40.0, cost_after=1.0),
        GreedyStep(index="b", cost=2.0, gain=20.0, utility_after=60.0, cost_after=3.0),
        GreedyStep(index="c", cost=4.0, gain=30.0, utility_after=90.0, cost_after=7.0),
    ]
    return GreedyResult(
        chosen=["a", "b", "c"],
        selection=frozenset({"a", "b", "c"}),
        utility=90.0,
        cost=7.0,
        target=100.0,
        epsilon=0.125,
        steps=steps,
    )


class TestGreedyResult:
    def test_reached_target(self):
        result = make_result()
        # goal = (1 - 0.125) * 100 = 87.5 <= 90.
        assert result.reached_target

    def test_not_reached(self):
        result = make_result()
        result.utility = 50.0
        assert not result.reached_target

    def test_cost_by_phase_partitions_total(self):
        result = make_result()
        by_phase = result.cost_by_phase()
        assert sum(by_phase.values()) == pytest.approx(result.cost)

    def test_cost_by_phase_attribution(self):
        result = make_result()
        by_phase = result.cost_by_phase()
        # Step a starts at utility 0 (phase 1); b at 40 (phase 1);
        # c at 60 (remaining .4 -> phase 2).
        assert by_phase[1] == pytest.approx(3.0)
        assert by_phase[2] == pytest.approx(4.0)

    def test_step_ratio(self):
        step = GreedyStep(index="a", cost=2.0, gain=10.0, utility_after=10.0, cost_after=2.0)
        assert step.ratio == 5.0

    def test_zero_cost_ratio_is_inf(self):
        step = GreedyStep(index="a", cost=0.0, gain=1.0, utility_after=1.0, cost_after=0.0)
        assert math.isinf(step.ratio)

    def test_summary_mentions_counts(self):
        text = make_result().summary()
        assert "3 picks" in text
