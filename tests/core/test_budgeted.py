"""Tests for the Lemma 2.1.2 greedy and BudgetedInstance validation."""

import math

import pytest

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import (
    AdditiveFunction,
    BudgetAdditiveFunction,
    CoverageFunction,
    WeightedCoverageFunction,
)
from repro.errors import BudgetError, InfeasibleError, InvalidInstanceError


def cover_instance():
    """Small weighted-cover instance with a known optimum.

    Universe {1..6}; the 'big' set covers everything at cost 10, three
    cheap sets cover it at total cost 3.
    """
    covers = {
        "big": {1, 2, 3, 4, 5, 6},
        "s1": {1, 2},
        "s2": {3, 4},
        "s3": {5, 6},
    }
    utility = CoverageFunction(covers)
    subsets = {k: frozenset({k}) for k in covers}
    costs = {"big": 10.0, "s1": 1.0, "s2": 1.0, "s3": 1.0}
    return BudgetedInstance(utility=utility, subsets=subsets, costs=costs)


class TestBudgetedInstanceValidation:
    def test_mismatched_keys_rejected(self):
        utility = CoverageFunction({"a": {1}})
        with pytest.raises(InvalidInstanceError):
            BudgetedInstance(utility, {"a": frozenset({"a"})}, {"b": 1.0})

    def test_stray_items_rejected(self):
        utility = CoverageFunction({"a": {1}})
        with pytest.raises(InvalidInstanceError):
            BudgetedInstance(utility, {"a": frozenset({"zzz"})}, {"a": 1.0})

    def test_negative_costs_rejected(self):
        utility = CoverageFunction({"a": {1}})
        with pytest.raises(InvalidInstanceError):
            BudgetedInstance(utility, {"a": frozenset({"a"})}, {"a": -1.0})

    def test_from_items_builds_singletons(self):
        utility = AdditiveFunction({"a": 1.0, "b": 2.0})
        inst = BudgetedInstance.from_items(utility, {"a": 1.0, "b": 1.0})
        assert inst.subsets["a"] == frozenset({"a"})
        assert inst.cost_of(["a", "b"]) == 2.0

    def test_union_of(self):
        inst = cover_instance()
        assert inst.union_of(["s1", "s2"]) == frozenset({"s1", "s2"})


class TestGreedyParameters:
    def test_bad_epsilon_rejected(self):
        inst = cover_instance()
        for eps in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(BudgetError):
                budgeted_greedy(inst, target=6.0, epsilon=eps)

    def test_negative_target_rejected(self):
        with pytest.raises(BudgetError):
            budgeted_greedy(cover_instance(), target=-1.0, epsilon=0.5)


class TestGreedyBehaviour:
    def test_reaches_target_utility(self):
        inst = cover_instance()
        result = budgeted_greedy(inst, target=6.0, epsilon=1.0 / 7)
        assert result.utility >= 6.0 - 1e-9
        assert result.reached_target

    def test_prefers_cheap_sets(self):
        # Ratio of each cheap set is 2/1 = 2; big set's is 6/10 = 0.6.
        inst = cover_instance()
        result = budgeted_greedy(inst, target=6.0, epsilon=1.0 / 7)
        assert "big" not in result.chosen
        assert result.cost == 3.0

    def test_steps_record_monotone_utility(self):
        inst = cover_instance()
        result = budgeted_greedy(inst, target=6.0, epsilon=1.0 / 7)
        utilities = [s.utility_after for s in result.steps]
        assert utilities == sorted(utilities)

    def test_cost_accumulates(self):
        inst = cover_instance()
        result = budgeted_greedy(inst, target=6.0, epsilon=1.0 / 7)
        assert result.steps[-1].cost_after == pytest.approx(result.cost)

    def test_partial_target(self):
        inst = cover_instance()
        # Target 2 with eps=0.5 only needs utility 1; one set suffices.
        result = budgeted_greedy(inst, target=2.0, epsilon=0.5)
        assert result.utility >= 1.0
        assert len(result.chosen) == 1

    def test_infeasible_target_raises(self):
        inst = cover_instance()
        with pytest.raises(InfeasibleError):
            budgeted_greedy(inst, target=100.0, epsilon=0.5)

    def test_zero_cost_subsets_supported(self):
        utility = CoverageFunction({"free": {1, 2}, "paid": {3}})
        inst = BudgetedInstance(
            utility,
            {k: frozenset({k}) for k in ("free", "paid")},
            {"free": 0.0, "paid": 5.0},
        )
        result = budgeted_greedy(inst, target=3.0, epsilon=0.25)
        assert result.chosen[0] == "free"  # infinite ratio goes first

    def test_grouped_subsets_with_nonlinear_cost(self):
        # The paper's generalisation: a bundle may be cheaper than its parts.
        covers = {"x": {1}, "y": {2}, "bundle": {1, 2}}
        utility = CoverageFunction(covers)
        subsets = {
            "x": frozenset({"x"}),
            "y": frozenset({"y"}),
            "bundle": frozenset({"x", "y"}),
        }
        costs = {"x": 2.0, "y": 2.0, "bundle": 2.5}
        inst = BudgetedInstance(utility, subsets, costs)
        result = budgeted_greedy(inst, target=2.0, epsilon=1.0 / 3)
        assert result.chosen == ["bundle"]

    def test_truncation_respected_for_budget_additive(self):
        utility = BudgetAdditiveFunction({"a": 10.0, "b": 1.0}, cap=4.0)
        inst = BudgetedInstance.from_items(utility, {"a": 1.0, "b": 1.0})
        result = budgeted_greedy(inst, target=4.0, epsilon=0.1)
        assert result.utility == 4.0


class TestSetCoverGuarantee:
    """Lemma 2.1.2 specialised to Set Cover must respect H_n * OPT."""

    def test_log_factor_on_planted_instance(self):
        # Planted optimum: 3 disjoint sets of cost 1 cover U; noise sets
        # are strictly worse. Greedy's cost must be within H_9 * 3.
        universe = set(range(9))
        covers = {
            "opt0": {0, 1, 2},
            "opt1": {3, 4, 5},
            "opt2": {6, 7, 8},
            "noise0": {0, 3, 6},
            "noise1": {1, 4, 7},
        }
        utility = CoverageFunction(covers)
        subsets = {k: frozenset({k}) for k in covers}
        costs = {"opt0": 1.0, "opt1": 1.0, "opt2": 1.0, "noise0": 1.5, "noise1": 1.5}
        inst = BudgetedInstance(utility, subsets, costs)
        n = len(universe)
        result = budgeted_greedy(inst, target=float(n), epsilon=1.0 / (n + 1))
        assert result.utility == float(n)
        h_n = sum(1.0 / i for i in range(1, n + 1))
        assert result.cost <= 3.0 * h_n + 1e-9

    def test_exact_coverage_with_integer_trick(self):
        # eps = 1/(n+1) forces full coverage for integer-valued utilities.
        covers = {f"s{i}": {i} for i in range(5)}
        utility = CoverageFunction(covers)
        inst = BudgetedInstance(
            utility, {k: frozenset({k}) for k in covers}, {k: 1.0 for k in covers}
        )
        result = budgeted_greedy(inst, target=5.0, epsilon=1.0 / 6)
        assert result.utility == 5.0
        assert result.cost == 5.0


class TestWeightedCoverTarget:
    def test_weighted_cover_respects_truncation(self):
        fn = WeightedCoverageFunction(
            {"a": {1}, "b": {2}}, weights={1: 10.0, 2: 1.0}
        )
        inst = BudgetedInstance.from_items(fn, {"a": 1.0, "b": 1.0})
        # Target 5: the 'a' set alone overshoots; truncated gain counts
        # only up to 5 so its ratio is 5, still the best.
        result = budgeted_greedy(inst, target=5.0, epsilon=0.2)
        assert result.chosen == ["a"]
        assert result.utility >= 4.0
