"""Oracle wrappers: counting and caching semantics."""

from repro.core.functions import CoverageFunction
from repro.core.oracle import CachedOracle, CountingOracle


def fn():
    return CoverageFunction({"a": {1, 2}, "b": {2, 3}})


class TestCountingOracle:
    def test_counts_calls(self):
        oracle = CountingOracle(fn())
        oracle(frozenset())
        oracle({"a"})
        oracle({"a", "b"})
        assert oracle.calls == 3

    def test_reset(self):
        oracle = CountingOracle(fn())
        oracle({"a"})
        oracle.reset()
        assert oracle.calls == 0

    def test_value_passthrough(self):
        oracle = CountingOracle(fn())
        assert oracle({"a"}) == 2.0

    def test_ground_set_passthrough(self):
        oracle = CountingOracle(fn())
        assert oracle.ground_set == frozenset({"a", "b"})

    def test_composes_with_cache(self):
        counting = CountingOracle(fn())
        cached = CachedOracle(counting)
        cached({"a"})
        cached({"a"})
        assert counting.calls == 1


class TestCachedOracle:
    def test_hit_miss_accounting(self):
        oracle = CachedOracle(fn())
        oracle({"a"})
        oracle({"a"})
        oracle({"b"})
        assert oracle.misses == 2
        assert oracle.hits == 1

    def test_cache_keyed_on_set_not_order(self):
        oracle = CachedOracle(fn())
        oracle(["a", "b"])
        oracle(["b", "a"])
        assert oracle.hits == 1

    def test_max_entries_lru_eviction(self):
        oracle = CachedOracle(fn(), max_entries=1)
        oracle({"a"})
        oracle({"b"})  # evicts {"a"} (LRU), caches {"b"}
        oracle({"b"})  # hit: a full cache keeps serving recent queries
        assert oracle.misses == 2
        assert oracle.hits == 1
        oracle({"a"})  # evicted earlier -> miss again
        assert oracle.misses == 3

    def test_lru_recency_refresh_on_hit(self):
        oracle = CachedOracle(fn(), max_entries=2)
        oracle({"a"})
        oracle({"b"})
        oracle({"a"})  # hit refreshes {"a"}'s recency
        oracle({"a", "b"})  # evicts {"b"}, the least recently used
        assert oracle.value(frozenset({"a"})) == 2.0
        assert oracle.hits == 2  # the refresh plus this re-read
        oracle({"b"})
        assert oracle.misses == 4  # {"b"} was the one evicted

    def test_cache_never_freezes_at_cap(self):
        # Regression: a full cache used to stop inserting, so every
        # post-fill query missed forever.  LRU keeps the hit rate alive.
        oracle = CachedOracle(fn(), max_entries=1)
        for _ in range(3):
            oracle({"a"})
            oracle({"a"})
        # After the first miss each repeat pair scores at least one hit.
        assert oracle.hits >= 3

    def test_max_entries_zero_means_cache_nothing(self):
        oracle = CachedOracle(fn(), max_entries=0)
        oracle({"a"})
        oracle({"a"})
        assert oracle.misses == 2 and oracle.hits == 0

    def test_marginal_cache_lru_eviction(self):
        oracle = CachedOracle(fn(), max_entries=1)
        sel = frozenset()
        oracle.marginal_gain(sel, frozenset({"a"}))
        oracle.marginal_gain(sel, frozenset({"b"}))  # evicts the first pair
        hits = oracle.hits
        oracle.marginal_gain(sel, frozenset({"b"}))  # hit: most recent survives
        assert oracle.hits == hits + 1

    def test_clear(self):
        oracle = CachedOracle(fn())
        oracle({"a"})
        oracle.clear()
        oracle({"a"})
        assert oracle.misses == 1
        assert oracle.hits == 0


class TestMarginalGainFastPath:
    def test_gain_matches_value_difference(self):
        oracle = CachedOracle(fn())
        sel, items = frozenset({"a"}), frozenset({"b"})
        expected = oracle.value(sel | items) - oracle.value(sel)
        assert oracle.marginal_gain(sel, items) == expected

    def test_repeat_probe_hits_fingerprint_cache(self):
        oracle = CachedOracle(fn())
        sel, items = frozenset({"a"}), frozenset({"b"})
        oracle.marginal_gain(sel, items)
        hits = oracle.hits
        oracle.marginal_gain(sel, items)
        assert oracle.hits == hits + 1
        assert oracle.misses == 2  # only the two values of the first probe

    def test_distinct_selections_do_not_collide(self):
        oracle = CachedOracle(fn())
        items = frozenset({"b"})
        g1 = oracle.marginal_gain(frozenset(), items)  # |{2, 3}| = 2
        g2 = oracle.marginal_gain(frozenset({"a"}), items)  # adds only {3}
        assert (g1, g2) == (2.0, 1.0)

    def test_clear_drops_marginal_cache(self):
        oracle = CachedOracle(fn())
        oracle.marginal_gain(frozenset({"a"}), frozenset({"b"}))
        oracle.clear()
        oracle.marginal_gain(frozenset({"a"}), frozenset({"b"}))
        assert oracle.misses == 2
