"""Unit tests for the concrete set-function families."""

import numpy as np
import pytest

from repro.core.functions import (
    AdditiveFunction,
    BudgetAdditiveFunction,
    CoverageFunction,
    CutFunction,
    FacilityLocationFunction,
    MatroidRankFunction,
    MaxValueFunction,
    MinValueFunction,
    WeightedCoverageFunction,
)
from repro.core.submodular import check_monotone, check_submodular
from repro.matroids import GraphicMatroid, UniformMatroid


class TestCoverage:
    def test_basic_values(self):
        fn = CoverageFunction({"a": {1, 2}, "b": {2, 3, 4}})
        assert fn(set()) == 0
        assert fn({"a"}) == 2
        assert fn({"a", "b"}) == 4

    def test_universe(self):
        fn = CoverageFunction({"a": {1}, "b": {2}})
        assert fn.universe == frozenset({1, 2})

    def test_covered(self):
        fn = CoverageFunction({"a": {1, 2}, "b": {2}})
        assert fn.covered(frozenset({"b"})) == frozenset({2})

    def test_structure(self):
        fn = CoverageFunction({"a": {1, 2}, "b": {2, 3}, "c": {3, 4, 5}})
        assert check_monotone(fn)
        assert check_submodular(fn)


class TestWeightedCoverage:
    def test_weighted_values(self):
        fn = WeightedCoverageFunction(
            {"a": {1, 2}, "b": {2}}, weights={1: 5.0, 2: 1.0}
        )
        assert fn({"a"}) == 6.0
        assert fn({"b"}) == 1.0

    def test_default_weight_is_one(self):
        fn = WeightedCoverageFunction({"a": {1, 9}}, weights={1: 2.0})
        assert fn({"a"}) == 3.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            WeightedCoverageFunction({"a": {1}}, weights={1: -1.0})

    def test_structure(self):
        fn = WeightedCoverageFunction(
            {"a": {1, 2}, "b": {2, 3}, "c": {1, 3}},
            weights={1: 1.0, 2: 2.5, 3: 0.5},
        )
        assert check_submodular(fn)


class TestAdditive:
    def test_sum(self):
        fn = AdditiveFunction({"x": 1.0, "y": 2.0})
        assert fn({"x", "y"}) == 3.0

    def test_modular_means_marginals_constant(self):
        fn = AdditiveFunction({"x": 1.0, "y": 2.0, "z": 4.0})
        assert fn.marginal_element(frozenset(), "z") == fn.marginal_element({"x", "y"}, "z")

    def test_structure(self):
        fn = AdditiveFunction({"x": 1.0, "y": 2.0, "z": 0.0})
        assert check_monotone(fn)
        assert check_submodular(fn)


class TestBudgetAdditive:
    def test_cap(self):
        fn = BudgetAdditiveFunction({"x": 3.0, "y": 4.0}, cap=5.0)
        assert fn({"x"}) == 3.0
        assert fn({"x", "y"}) == 5.0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            BudgetAdditiveFunction({"x": 1.0}, cap=-2.0)

    def test_structure(self):
        fn = BudgetAdditiveFunction({"x": 3.0, "y": 4.0, "z": 2.0}, cap=5.0)
        assert check_monotone(fn)
        assert check_submodular(fn)


class TestCut:
    def triangle(self):
        return CutFunction(
            ["u", "v", "w"], [("u", "v", 1.0), ("v", "w", 2.0), ("u", "w", 4.0)]
        )

    def test_cut_values(self):
        fn = self.triangle()
        assert fn(set()) == 0.0
        assert fn({"u"}) == 5.0
        assert fn({"u", "v"}) == 6.0
        assert fn({"u", "v", "w"}) == 0.0

    def test_nonmonotone(self):
        fn = self.triangle()
        assert fn({"u", "v", "w"}) < fn({"u"})

    def test_submodular_but_not_monotone(self):
        fn = self.triangle()
        assert check_submodular(fn)

    def test_self_loops_ignored(self):
        fn = CutFunction(["u", "v"], [("u", "u", 9.0), ("u", "v", 1.0)])
        assert fn({"u"}) == 1.0

    def test_unknown_vertex_rejected(self):
        with pytest.raises(ValueError):
            CutFunction(["u"], [("u", "zz", 1.0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CutFunction(["u", "v"], [("u", "v", -1.0)])


class TestFacilityLocation:
    def test_best_facility_per_client(self):
        benefit = np.array([[1.0, 3.0], [2.0, 0.0]])
        fn = FacilityLocationFunction(["f0", "f1"], benefit)
        assert fn({"f0"}) == 3.0  # clients get 1 and 2
        assert fn({"f1"}) == 3.0  # clients get 3 and 0
        assert fn({"f0", "f1"}) == 5.0  # max(1,3) + max(2,0)

    def test_empty_is_zero(self):
        fn = FacilityLocationFunction(["f0"], np.array([[1.0]]))
        assert fn(set()) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FacilityLocationFunction(["f0", "f1"], np.array([1.0, 2.0]))

    def test_negative_benefit_rejected(self):
        with pytest.raises(ValueError):
            FacilityLocationFunction(["f0"], np.array([[-1.0]]))

    def test_structure(self):
        rng = np.random.default_rng(0)
        fn = FacilityLocationFunction(
            [f"f{i}" for i in range(5)], rng.random((6, 5))
        )
        assert check_monotone(fn)
        assert check_submodular(fn)


class TestMatroidRank:
    def test_uniform_rank(self):
        fn = MatroidRankFunction(UniformMatroid({1, 2, 3, 4}, k=2))
        assert fn({1}) == 1.0
        assert fn({1, 2, 3}) == 2.0

    def test_graphic_rank_is_forest_size(self):
        gm = GraphicMatroid({0: ("a", "b"), 1: ("b", "c"), 2: ("a", "c")})
        fn = MatroidRankFunction(gm)
        assert fn({0, 1, 2}) == 2.0  # spanning tree of the triangle

    def test_structure(self):
        gm = GraphicMatroid({0: ("a", "b"), 1: ("b", "c"), 2: ("a", "c"), 3: ("c", "d")})
        fn = MatroidRankFunction(gm)
        assert check_monotone(fn)
        assert check_submodular(fn)


class TestMaxMin:
    def test_max_value(self):
        fn = MaxValueFunction({"a": 1.0, "b": 5.0})
        assert fn(set()) == 0.0
        assert fn({"a", "b"}) == 5.0

    def test_max_is_submodular(self):
        fn = MaxValueFunction({"a": 1.0, "b": 5.0, "c": 3.0})
        assert check_monotone(fn)
        assert check_submodular(fn)

    def test_min_value(self):
        fn = MinValueFunction({"a": 1.0, "b": 5.0})
        assert fn({"a", "b"}) == 1.0
        assert fn(set()) == 0.0
