"""Property suite for the vectorized incremental oracle kernels.

Two families of guarantees, both demanded by the oracle-kernel layer's
contract (:mod:`repro.core.kernels`):

* *marginal equivalence* — for every concrete utility family, every
  batched query (``batch_marginals``, ``gains``, ``set_gains``,
  prepared batches, the scalar fast paths) agrees with the naive
  per-element evaluation ``F(S + c) - F(S)`` to 1e-12, across random
  seeded selections and candidate sets, including candidates
  overlapping the selection;

* *consumer equivalence* — the greedy/secretary/estimate loops produce
  the same pick sequences with kernels on as with the generic naive
  fallback (obtained by hiding the same function behind a
  ``LambdaSetFunction``, which advertises no kernel).
"""

import numpy as np
import pytest

from repro.analysis.ratio import offline_greedy_cardinality
from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import (
    AdditiveFunction,
    BudgetAdditiveFunction,
    CoverageFunction,
    CutFunction,
    FacilityLocationFunction,
    WeightedCoverageFunction,
)
from repro.core.kernels import IncrementalEvaluator, evaluator_for
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.oracle import CachedOracle, CountingOracle
from repro.core.submodular import LambdaSetFunction, TruncatedFunction
from repro.errors import OracleError
from repro.secretary.knapsack_secretary import offline_knapsack_estimate
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import monotone_submodular_secretary

TOL = 1e-12


def _families(seed: int):
    """One seeded instance of every kernel-backed utility family."""
    rng = np.random.default_rng(seed)
    els = [f"e{i}" for i in range(18)]
    values = {e: float(rng.random()) for e in els}
    covers = {e: {f"u{j}" for j in rng.choice(25, size=int(rng.integers(1, 5)), replace=False)} for e in els}
    weights = {f"u{j}": float(rng.random() * 3) for j in range(25)}
    edges = [
        (els[i], els[j], float(rng.random()))
        for i in range(len(els))
        for j in range(i + 1, len(els))
        if rng.random() < 0.3
    ]
    return [
        AdditiveFunction(values),
        BudgetAdditiveFunction(values, cap=3.0),
        CoverageFunction(covers),
        WeightedCoverageFunction(covers, weights),
        CutFunction(els, edges),
        FacilityLocationFunction(els, rng.random((11, len(els)))),
    ]


def _random_selection(rng, ground):
    ground = sorted(ground, key=repr)
    n_pick = int(rng.integers(0, len(ground)))
    return set(rng.choice(ground, size=n_pick, replace=False)) if n_pick else set()


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_marginals_match_naive(seed):
    rng = np.random.default_rng(100 + seed)
    for fn in _families(seed):
        ground = sorted(fn.ground_set, key=repr)
        for _ in range(4):
            sel = _random_selection(rng, ground)
            base = frozenset(sel)
            fsel = fn.value(base)
            expected = np.array([fn.value(base | {c}) - fsel for c in ground])
            got = fn.batch_marginals(sel, ground)
            assert np.allclose(got, expected, rtol=TOL, atol=TOL), type(fn).__name__


@pytest.mark.parametrize("seed", [0, 1])
def test_set_gains_and_prepared_match_naive_under_overlap(seed):
    rng = np.random.default_rng(200 + seed)
    for fn in _families(seed):
        ground = sorted(fn.ground_set, key=repr)
        sel = _random_selection(rng, ground)
        # Candidate sets deliberately overlap the selection: the kernel
        # must charge only the genuinely new part.
        cand_sets = [
            frozenset(rng.choice(ground, size=int(rng.integers(1, 5)), replace=False))
            for _ in range(6)
        ]
        base = frozenset(sel)
        fsel = fn.value(base)
        expected = np.array([fn.value(base | s) - fsel for s in cand_sets])
        ev = fn.incremental_evaluator()
        assert ev.fast, type(fn).__name__
        ev.reset(sel)
        assert np.allclose(ev.set_gains(cand_sets), expected, rtol=TOL, atol=TOL)
        batch = ev.prepare(cand_sets)
        assert np.allclose(batch.gains(range(len(cand_sets))), expected, rtol=TOL, atol=TOL)
        # Prepared batches track evaluator state across adds.
        extra = next(e for e in ground if e not in sel)
        ev.add(extra)
        base2 = base | {extra}
        f2 = fn.value(base2)
        expected2 = np.array([fn.value(base2 | s) - f2 for s in cand_sets])
        assert np.allclose(batch.gains(range(len(cand_sets))), expected2, rtol=TOL, atol=TOL)


@pytest.mark.parametrize("seed", [0, 1])
def test_incremental_adds_track_value(seed):
    rng = np.random.default_rng(300 + seed)
    for fn in _families(seed):
        ground = sorted(fn.ground_set, key=repr)
        ev = fn.incremental_evaluator()
        acc: set = set()
        order = list(rng.permutation(ground))
        for e in order[:10]:
            got = ev.add(e)
            acc.add(e)
            want = fn.value(frozenset(acc))
            assert got == pytest.approx(want, rel=1e-9, abs=1e-9), type(fn).__name__
            assert ev.gain1(e) == pytest.approx(0.0, abs=TOL)  # already selected
            fresh = [x for x in ground if x not in acc]
            if fresh:
                assert ev.union_value1(fresh[0]) == pytest.approx(
                    fn.value(frozenset(acc) | {fresh[0]}), rel=1e-9, abs=1e-9
                )


def test_naive_fallback_for_opaque_functions():
    values = {f"e{i}": float(i + 1) for i in range(6)}
    fn = AdditiveFunction(values)
    lam = LambdaSetFunction(fn.ground_set, fn.value)
    ev = lam.incremental_evaluator()
    assert isinstance(ev, IncrementalEvaluator) and not ev.fast
    assert np.allclose(
        lam.batch_marginals({"e0"}, ["e1", "e2"]),
        [values["e1"], values["e2"]],
        rtol=TOL, atol=TOL,
    )
    trunc = TruncatedFunction(fn, cap=4.0)
    assert not trunc.incremental_evaluator().fast
    assert trunc.batch_marginals(set(), ["e4"])[0] == pytest.approx(4.0)


def _as_naive(fn):
    """Hide *fn* behind a lambda so every consumer takes the naive path."""
    return LambdaSetFunction(fn.ground_set, fn.value)


def _instances_for_greedy(seed: int):
    rng = np.random.default_rng(400 + seed)
    out = []
    for fn in _families(seed):
        ground = sorted(fn.ground_set, key=repr)
        # Mixed singleton/multi-element subsets with arbitrary costs.
        subsets = {}
        costs = {}
        for i, e in enumerate(ground):
            subsets[f"s{i}"] = frozenset({e})
            costs[f"s{i}"] = float(0.5 + rng.random())
        for i in range(5):
            members = frozenset(rng.choice(ground, size=3, replace=False))
            subsets[f"m{i}"] = members
            costs[f"m{i}"] = float(1.0 + rng.random())
        out.append((fn, subsets, costs))
    return out


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("runner", [budgeted_greedy, lazy_budgeted_greedy])
def test_greedy_pick_sequences_match_kernels_on_vs_off(seed, runner):
    for fn, subsets, costs in _instances_for_greedy(seed):
        if isinstance(fn, CutFunction):
            continue  # the budgeted greedy contract is monotone utilities
        target = fn.value(frozenset(fn.ground_set)) * 0.7
        if target <= 0:
            continue
        fast = runner(
            BudgetedInstance(utility=fn, subsets=subsets, costs=costs),
            target=target, epsilon=0.25,
        )
        slow = runner(
            BudgetedInstance(utility=_as_naive(fn), subsets=subsets, costs=costs),
            target=target, epsilon=0.25,
        )
        assert fast.chosen == slow.chosen, type(fn).__name__
        assert fast.cost == pytest.approx(slow.cost, rel=TOL)
        assert fast.utility == pytest.approx(slow.utility, rel=1e-9)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_offline_greedy_cardinality_matches_naive(seed):
    for fn in _families(seed):
        chosen_fast, value_fast = offline_greedy_cardinality(fn, 5)
        chosen_slow, value_slow = offline_greedy_cardinality(_as_naive(fn), 5)
        assert chosen_fast == chosen_slow, type(fn).__name__
        assert value_fast == pytest.approx(value_slow, rel=1e-9)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_offline_knapsack_estimate_matches_naive(seed):
    rng = np.random.default_rng(500 + seed)
    for fn in _families(seed):
        items = sorted(fn.ground_set, key=repr)
        weights = {e: float(0.05 + 0.4 * rng.random()) for e in items}
        fast = offline_knapsack_estimate(fn, weights, items)
        slow = offline_knapsack_estimate(_as_naive(fn), weights, items)
        assert fast == pytest.approx(slow, rel=1e-9), type(fn).__name__


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_secretary_selection_and_counts_match_kernels_on_vs_off(seed):
    for fn in _families(seed):
        order = sorted(fn.ground_set, key=repr)
        counting_fast = CountingOracle(fn)
        counting_slow = CountingOracle(_as_naive(fn))
        fast = monotone_submodular_secretary(
            SecretaryStream(counting_fast, order=order), k=4
        )
        slow = monotone_submodular_secretary(
            SecretaryStream(counting_slow, order=order), k=4
        )
        assert fast.selected == slow.selected, type(fn).__name__
        # The batched accounting bills one query per scored candidate,
        # so reported oracle work is identical to the naive scan.
        assert counting_fast.calls == counting_slow.calls, type(fn).__name__


def test_arrival_evaluator_enforces_no_peeking():
    fn = AdditiveFunction({f"e{i}": float(i + 1) for i in range(8)})
    order = sorted(fn.ground_set, key=repr)
    stream = SecretaryStream(fn, order=order)
    ev = stream.oracle.incremental_evaluator()
    assert ev.fast
    with pytest.raises(OracleError):
        ev.gains([order[0]])  # nothing has arrived yet
    it = iter(stream)
    first = next(it)
    assert ev.gain1(first) == pytest.approx(fn.value(frozenset({first})))
    with pytest.raises(OracleError):
        ev.union_value1(order[3] if order[3] != first else order[4])
    with pytest.raises(OracleError):
        ev.add(order[5] if order[5] != first else order[6])


def test_counting_oracle_bills_batches_per_candidate():
    fn = CoverageFunction({f"e{i}": {i, i + 1} for i in range(10)})
    counting = CountingOracle(fn)
    ev = counting.incremental_evaluator()
    assert ev.fast
    assert counting.calls == 1  # construction evaluates (and bills) F(empty)
    ev.gains([f"e{i}" for i in range(10)])
    assert counting.calls == 11
    ev.union_value1("e0")
    assert counting.calls == 12
    batch = ev.prepare([frozenset({"e1", "e2"}), frozenset({"e3"})])
    batch.gains([0, 1])
    assert counting.calls == 14
    ev.set_gains([frozenset({"e4"})])
    assert counting.calls == 15


def test_cached_oracle_prefers_kernel_over_memo():
    fn = CoverageFunction({f"e{i}": {i, i + 1} for i in range(6)})
    cached = CachedOracle(fn)
    ev = cached.incremental_evaluator()
    assert ev.fast  # kernel state subsumes memoisation
    assert ev.gain1("e0") == pytest.approx(2.0)
    assert cached.hits == cached.misses == 0  # dict caches bypassed


def test_evaluator_for_falls_back_without_api():
    class Bare:
        ground_set = frozenset({"a", "b"})

        def value(self, subset):
            return float(len(subset))

    ev = evaluator_for(Bare())
    assert not ev.fast
    assert ev.gains(["a"])[0] == pytest.approx(1.0)
