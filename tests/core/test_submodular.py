"""Unit tests for the SetFunction abstraction and structural checkers."""

import math

import pytest

from repro.core.submodular import (
    LambdaSetFunction,
    RestrictedFunction,
    TruncatedFunction,
    check_monotone,
    check_submodular,
    powerset,
)
from repro.core.functions import AdditiveFunction, CoverageFunction, MinValueFunction
from repro.errors import NotSubmodularError


def make_coverage():
    return CoverageFunction({"a": {1, 2}, "b": {2, 3}, "c": {4}})


class TestSetFunctionBasics:
    def test_call_matches_value(self):
        fn = make_coverage()
        assert fn({"a", "b"}) == fn.value(frozenset({"a", "b"}))

    def test_call_accepts_any_iterable(self):
        fn = make_coverage()
        assert fn(["a", "b"]) == 3.0
        assert fn(iter(["a"])) == 2.0

    def test_marginal_of_disjoint_set(self):
        fn = make_coverage()
        assert fn.marginal({"a"}, {"c"}) == 1.0

    def test_marginal_of_overlapping_set(self):
        fn = make_coverage()
        # b adds only item 3 on top of a.
        assert fn.marginal({"a"}, {"b"}) == 1.0

    def test_marginal_element(self):
        fn = make_coverage()
        assert fn.marginal_element(frozenset(), "a") == 2.0
        assert fn.marginal_element({"a"}, "a") == 0.0

    def test_is_normalized(self):
        assert make_coverage().is_normalized()

    def test_empty_set_value(self):
        assert make_coverage()(frozenset()) == 0.0


class TestLambdaSetFunction:
    def test_wraps_callable(self):
        fn = LambdaSetFunction({1, 2, 3}, lambda s: float(len(s)) ** 0.5)
        assert fn({1, 2, 3, }) == pytest.approx(math.sqrt(3))
        assert fn.ground_set == frozenset({1, 2, 3})

    def test_coerces_to_float(self):
        fn = LambdaSetFunction({1}, lambda s: len(s))
        assert isinstance(fn(frozenset({1})), float)


class TestTruncatedFunction:
    def test_truncation_caps_value(self):
        base = make_coverage()
        fn = TruncatedFunction(base, 2.0)
        assert fn({"a", "b", "c"}) == 2.0
        assert fn({"c"}) == 1.0

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            TruncatedFunction(make_coverage(), -1.0)

    def test_truncation_preserves_submodularity(self):
        fn = TruncatedFunction(make_coverage(), 2.0)
        assert check_submodular(fn)
        assert check_monotone(fn)

    def test_ground_set_passthrough(self):
        base = make_coverage()
        assert TruncatedFunction(base, 1.0).ground_set == base.ground_set


class TestRestrictedFunction:
    def test_restriction_ignores_outside_elements(self):
        base = make_coverage()
        fn = RestrictedFunction(base, {"a", "b"})
        assert fn.ground_set == frozenset({"a", "b"})
        # Asking about "a" only; value ignores anything outside allowed.
        assert fn({"a"}) == base({"a"})

    def test_restriction_requires_subset(self):
        with pytest.raises(ValueError):
            RestrictedFunction(make_coverage(), {"a", "zzz"})

    def test_restriction_stays_submodular(self):
        fn = RestrictedFunction(make_coverage(), {"a", "c"})
        assert check_submodular(fn)


class TestPowerset:
    def test_counts(self):
        assert sum(1 for _ in powerset([1, 2, 3])) == 8

    def test_empty(self):
        assert list(powerset([])) == [()]


class TestCheckers:
    def test_monotone_passes_coverage(self):
        assert check_monotone(make_coverage())

    def test_submodular_passes_coverage(self):
        assert check_submodular(make_coverage())

    def test_monotone_detects_violation(self):
        # f decreasing in size.
        fn = LambdaSetFunction({1, 2, 3}, lambda s: -float(len(s)))
        with pytest.raises(NotSubmodularError) as exc:
            check_monotone(fn)
        assert exc.value.witness is not None

    def test_submodular_detects_supermodular(self):
        fn = LambdaSetFunction({1, 2, 3}, lambda s: float(len(s)) ** 2)
        with pytest.raises(NotSubmodularError):
            check_submodular(fn)

    def test_min_function_not_submodular(self):
        # The Section 3.6 bottleneck function: witness required by the paper's
        # remark that min "is not even submodular".
        fn = MinValueFunction({"a": 1.0, "b": 3.0, "c": 2.0})
        with pytest.raises(NotSubmodularError):
            check_submodular(fn)

    def test_randomised_paths_run(self):
        values = {f"e{i}": float(i % 7) for i in range(40)}
        fn = AdditiveFunction(values)
        assert check_monotone(fn, rng=0, trials=50)
        assert check_submodular(fn, rng=0, trials=50)
