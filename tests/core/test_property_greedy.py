"""Property-based tests for the budgeted greedy (hypothesis).

Invariants attacked on random coverage instances:

* the greedy reaches its goal or correctly reports infeasibility;
* utility is non-decreasing along the trace and cost strictly positive
  when picks are made;
* lazy and plain greedy realise identical utility and cost;
* on instances small enough for brute force, the greedy's cost stays
  within the Lemma 2.1.2 bound of the true optimum.
"""

from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import CoverageFunction
from repro.core.lazy import lazy_budgeted_greedy
from repro.errors import InfeasibleError

import math

import pytest


@st.composite
def cover_instances(draw, max_items=10, max_sets=7):
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    n_sets = draw(st.integers(min_value=1, max_value=max_sets))
    covers = {}
    costs = {}
    for i in range(n_sets):
        members = draw(
            st.sets(st.integers(min_value=0, max_value=n_items - 1), max_size=n_items)
        )
        covers[f"s{i}"] = members or {0}
        costs[f"s{i}"] = float(draw(st.integers(min_value=1, max_value=8)))
    inst = BudgetedInstance(
        CoverageFunction(covers), {k: frozenset({k}) for k in covers}, costs
    )
    coverable = set().union(*covers.values())
    return inst, covers, costs, len(coverable)


@given(cover_instances())
@settings(max_examples=100, deadline=None)
def test_greedy_reaches_goal_or_raises(data):
    inst, covers, costs, coverable = data
    target = float(coverable)
    try:
        result = budgeted_greedy(inst, target=target, epsilon=1.0 / (coverable + 1))
    except InfeasibleError:
        pytest.fail("coverable target reported infeasible")
    assert result.utility >= coverable - 1e-9


@given(cover_instances())
@settings(max_examples=100, deadline=None)
def test_trace_invariants(data):
    inst, covers, costs, coverable = data
    result = budgeted_greedy(inst, target=float(coverable), epsilon=0.25)
    prev = 0.0
    for step in result.steps:
        assert step.utility_after >= prev - 1e-12
        assert step.gain > 0
        assert step.cost >= 0
        prev = step.utility_after
    assert result.cost == pytest.approx(sum(s.cost for s in result.steps))


@given(cover_instances())
@settings(max_examples=100, deadline=None)
def test_lazy_plain_agreement(data):
    inst, covers, costs, coverable = data
    eps = 1.0 / (coverable + 1)
    plain = budgeted_greedy(inst, target=float(coverable), epsilon=eps)
    lazy = lazy_budgeted_greedy(inst, target=float(coverable), epsilon=eps)
    assert lazy.utility == pytest.approx(plain.utility)
    assert lazy.cost == pytest.approx(plain.cost)


def brute_force_opt(covers, costs, coverable):
    names = sorted(covers)
    best = math.inf
    for r in range(len(names) + 1):
        for combo in combinations(names, r):
            covered = set().union(*(covers[c] for c in combo), set())
            if len(covered) >= coverable:
                best = min(best, sum(costs[c] for c in combo))
    return best


@given(cover_instances(max_items=8, max_sets=6))
@settings(max_examples=60, deadline=None)
def test_cost_within_lemma_bound_of_bruteforce(data):
    inst, covers, costs, coverable = data
    eps = 1.0 / (coverable + 1)
    result = budgeted_greedy(inst, target=float(coverable), epsilon=eps)
    opt = brute_force_opt(covers, costs, coverable)
    phases = math.ceil(math.log2(1.0 / eps))
    assert result.cost <= 2.0 * phases * opt + 1e-9


@given(cover_instances(), st.floats(min_value=0.05, max_value=0.9))
@settings(max_examples=80, deadline=None)
def test_bicriteria_fraction_respected(data, eps):
    inst, covers, costs, coverable = data
    result = budgeted_greedy(inst, target=float(coverable), epsilon=eps)
    assert result.utility >= (1 - eps) * coverable - 1e-9
