"""Offline knapsack submodular maximization."""

from itertools import combinations

import pytest

from repro.core.functions import AdditiveFunction, CoverageFunction
from repro.core.knapsack import (
    knapsack_density_greedy,
    knapsack_maximize,
    multi_knapsack_maximize,
)
from repro.errors import BudgetError, InvalidInstanceError
from repro.rng import as_generator


def brute_force(fn, weights, capacity):
    items = sorted(fn.ground_set)
    best = 0.0
    for r in range(len(items) + 1):
        for combo in combinations(items, r):
            if sum(weights[e] for e in combo) <= capacity:
                best = max(best, fn.value(frozenset(combo)))
    return best


class TestDensityGreedy:
    def test_respects_capacity(self):
        fn = AdditiveFunction({"a": 5.0, "b": 4.0, "c": 3.0})
        weights = {"a": 0.6, "b": 0.6, "c": 0.3}
        sol = knapsack_density_greedy(fn, weights, 1.0)
        assert sol.load <= 1.0

    def test_prefers_density(self):
        fn = AdditiveFunction({"dense": 5.0, "heavy": 6.0})
        weights = {"dense": 0.2, "heavy": 1.0}
        sol = knapsack_density_greedy(fn, weights, 1.0)
        assert "dense" in sol.selected

    def test_zero_weight_items_free(self):
        fn = AdditiveFunction({"free": 1.0, "paid": 2.0})
        sol = knapsack_density_greedy(fn, {"free": 0.0, "paid": 0.5}, 1.0)
        assert sol.selected == frozenset({"free", "paid"})

    def test_bad_capacity(self):
        fn = AdditiveFunction({"a": 1.0})
        with pytest.raises(BudgetError):
            knapsack_density_greedy(fn, {"a": 0.5}, 0.0)

    def test_negative_weight_rejected(self):
        fn = AdditiveFunction({"a": 1.0})
        with pytest.raises(InvalidInstanceError):
            knapsack_density_greedy(fn, {"a": -0.5}, 1.0)


class TestKnapsackMaximize:
    def test_singleton_beats_greedy_when_needed(self):
        # The classic density trap: a huge item the greedy skips.
        # Small items have the best density, but taking them blocks the
        # big item; the singleton branch rescues the 10.
        fn = AdditiveFunction({"big": 10.0, "s1": 2.0, "s2": 2.0})
        weights = {"big": 1.0, "s1": 0.1, "s2": 0.1}
        sol = knapsack_maximize(fn, weights, 1.0)
        assert sol.value == 10.0
        assert sol.strategy == "singleton"

    @pytest.mark.parametrize("seed", range(8))
    def test_three_approximation_vs_bruteforce(self, seed):
        gen = as_generator(seed)
        items = {f"i{j}": float(gen.random()) for j in range(9)}
        fn = AdditiveFunction(items)
        weights = {e: float(0.1 + 0.6 * gen.random()) for e in items}
        sol = knapsack_maximize(fn, weights, 1.0)
        opt = brute_force(fn, weights, 1.0)
        assert sol.value >= opt / 3 - 1e-9
        assert sol.load <= 1.0 + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_coverage_utility(self, seed):
        gen = as_generator(seed + 100)
        covers = {
            f"i{j}": {int(gen.integers(10)) for _ in range(3)} for j in range(8)
        }
        fn = CoverageFunction(covers)
        weights = {e: float(0.2 + 0.4 * gen.random()) for e in covers}
        sol = knapsack_maximize(fn, weights, 1.0)
        opt = brute_force(fn, weights, 1.0)
        assert sol.value >= opt / 3 - 1e-9


class TestMultiKnapsack:
    def test_feasible_in_all_original_knapsacks(self):
        gen = as_generator(0)
        items = {f"i{j}": float(gen.random()) for j in range(20)}
        fn = AdditiveFunction(items)
        weights = {e: [float(gen.random()), float(2 * gen.random())] for e in items}
        caps = [1.0, 2.0]
        sol = multi_knapsack_maximize(fn, weights, caps)
        for i, c in enumerate(caps):
            assert sum(weights[e][i] for e in sol.selected) <= c + 1e-9
        assert sol.load <= 1.0 + 1e-9  # max relative load

    def test_strategy_reports_l(self):
        fn = AdditiveFunction({"a": 1.0})
        sol = multi_knapsack_maximize(fn, {"a": [0.5, 0.5, 0.5]}, [1, 1, 1])
        assert sol.strategy == "reduced-l=3"

    def test_value_positive_when_anything_fits(self):
        fn = AdditiveFunction({"a": 3.0, "b": 1.0})
        sol = multi_knapsack_maximize(fn, {"a": [0.4], "b": [0.4]}, [1.0])
        assert sol.value == 4.0
