"""Property suite for the sparse/chunked kernel backend layer (v2).

The contracts under test, in the order the backend layer promises them:

* *bit-identity* — wherever a family has both a dense and a sparse
  backend, every query (``gains``, ``gain1``, ``union_values``,
  ``set_gains``, prepared batches) returns **exactly equal** floats on
  both, across growing selections.  This is the property that lets
  automatic backend selection flip per instance size without a single
  committed bench cell drifting.

* *constructor equivalence* — an ``from_arrays`` instance over integer
  elements agrees with the mapping-built instance of the same data, on
  the naive path and on every backend.

* *selection rule* — ``resolve_backend`` honours explicit overrides and
  applies the pinned cell/density constants on ``auto``.

* *degenerate instances* — empty ground sets, single-element universes,
  all-zero weights, and candidate pools larger than the ground set stay
  naive-parity correct on both backends.

* *wrapper passthrough* — ``backend=`` threads through
  ``CountingOracle`` / ``CachedOracle`` / ``FaultyOracle`` /
  ``ArrivalOracle`` / ``ShardView`` down to the family, and
  ``set_default_backend`` pins it from workload builders.

* *subsampling is explicit* — ``batch_marginals(subsample=...)``
  returns a distinct ``SubsampledMarginals`` type, is deterministic per
  seed, and is off by default everywhere.
"""

import numpy as np
import pytest

from repro.core.functions import (
    AdditiveFunction,
    BudgetAdditiveFunction,
    CoverageFunction,
    CutFunction,
    WeightedCoverageFunction,
)
from repro.core.kernels import (
    DENSE_CELL_LIMIT,
    DENSE_CELL_MIN,
    KERNEL_BACKENDS,
    SPARSE_DENSITY_CUTOFF,
    CoverageEvaluator,
    IncrementalEvaluator,
    SparseCoverageEvaluator,
    SparseCutEvaluator,
    resolve_backend,
)
from repro.core.oracle import CachedOracle, CountingOracle
from repro.core.submodular import SubsampledMarginals
from repro.errors import InvalidInstanceError

TOL = 1e-12


def _coverage_pair(seed, n=24, universe=40):
    """Equivalent mapping-built and array-built coverage instances."""
    rng = np.random.default_rng(seed)
    rows = [
        sorted(rng.choice(universe, size=int(rng.integers(1, 6)), replace=False))
        for _ in range(n)
    ]
    covers = {i: {int(j) for j in row} for i, row in enumerate(rows)}
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum([len(r) for r in rows], out=indptr[1:])
    indices = np.concatenate([np.asarray(r) for r in rows]) if n else np.zeros(0)
    return covers, indptr, indices


def _cut_pair(seed, n=20):
    """Equivalent mapping-built and array-built cut instances."""
    rng = np.random.default_rng(seed)
    u, v, w = [], [], []
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.3:
                u.append(i)
                v.append(j)
                w.append(float(rng.random()))
    edges = list(zip(u, v, w))
    return edges, np.asarray(u), np.asarray(v), np.asarray(w)


def _drive_both(make_a, make_b, ground, rng, rounds=4):
    """Drive two evaluators through identical query/add sequences.

    Yields paired query results; the caller asserts its equality
    notion (exact for backend pairs, 1e-12 for naive parity).
    """
    ev_a, ev_b = make_a(), make_b()
    pool = list(ground)
    for _ in range(rounds):
        yield ev_a.gains(pool), ev_b.gains(pool)
        probe = pool[int(rng.integers(len(pool)))]
        yield ev_a.gain1(probe), ev_b.gain1(probe)
        yield ev_a.union_values(pool[::2]), ev_b.union_values(pool[::2])
        sets = [
            [pool[int(i)] for i in rng.choice(len(pool), size=3, replace=False)]
            for _ in range(3)
        ]
        yield ev_a.set_gains(sets), ev_b.set_gains(sets)
        batch_a, batch_b = ev_a.prepare(sets), ev_b.prepare(sets)
        idx = [2, 0]
        yield batch_a.gains(idx), batch_b.gains(idx)
        pick = pool[int(rng.integers(len(pool)))]
        ev_a.add(pick)
        ev_b.add(pick)
        yield ev_a.current_value, ev_b.current_value


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_coverage_dense_equals_sparse_exactly(self, seed):
        covers, _, _ = _coverage_pair(seed)
        fn = CoverageFunction(covers)
        rng = np.random.default_rng(500 + seed)
        for a, b in _drive_both(
            lambda: fn.fast_evaluator("dense"),
            lambda: fn.fast_evaluator("sparse"),
            sorted(fn.ground_set),
            rng,
        ):
            assert np.array_equal(np.asarray(a), np.asarray(b))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_cut_dense_equals_sparse_exactly(self, seed):
        edges, *_ = _cut_pair(seed)
        fn = CutFunction(range(20), edges)
        rng = np.random.default_rng(600 + seed)
        for a, b in _drive_both(
            lambda: fn.fast_evaluator("dense"),
            lambda: fn.fast_evaluator("sparse"),
            sorted(fn.ground_set),
            rng,
        ):
            assert np.array_equal(np.asarray(a), np.asarray(b))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_backend_types_are_what_the_override_names(self, seed):
        covers, _, _ = _coverage_pair(seed)
        fn = CoverageFunction(covers)
        assert isinstance(fn.fast_evaluator("dense"), CoverageEvaluator)
        assert isinstance(fn.fast_evaluator("sparse"), SparseCoverageEvaluator)
        edges, *_ = _cut_pair(seed)
        cut = CutFunction(range(20), edges)
        assert isinstance(cut.fast_evaluator("sparse"), SparseCutEvaluator)
        assert cut.fast_evaluator("naive") is None
        assert isinstance(
            cut.incremental_evaluator(backend="naive"), IncrementalEvaluator
        )
        assert not cut.incremental_evaluator(backend="naive").fast

    @pytest.mark.parametrize("seed", [0, 1])
    def test_sparse_matches_naive_to_tolerance(self, seed):
        covers, _, _ = _coverage_pair(seed)
        weights = {
            j: float(np.random.default_rng(seed).random()) * 2 for j in range(40)
        }
        rng = np.random.default_rng(700 + seed)
        for fn in (
            CoverageFunction(covers),
            WeightedCoverageFunction(covers, weights),
        ):
            ground = sorted(fn.ground_set)
            for a, b in _drive_both(
                lambda fn=fn: fn.fast_evaluator("sparse"),
                lambda fn=fn: IncrementalEvaluator(fn),
                ground,
                rng,
            ):
                assert np.allclose(
                    np.asarray(a), np.asarray(b), rtol=TOL, atol=TOL
                )


class TestFromArrays:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_coverage_from_arrays_matches_mapping_built(self, seed):
        covers, indptr, indices = _coverage_pair(seed)
        dict_fn = CoverageFunction(covers)
        arr_fn = CoverageFunction.from_arrays(indptr, indices, n_items=40)
        assert arr_fn.ground_set == dict_fn.ground_set
        rng = np.random.default_rng(seed)
        sel = [0, 5, 7]
        pool = list(range(24))
        for backend in ("dense", "sparse", "naive"):
            got = arr_fn.batch_marginals(sel, pool, backend=backend)
            want = dict_fn.batch_marginals(sel, pool, backend="naive")
            assert np.allclose(got, want, rtol=TOL, atol=TOL), backend
        # Unsorted/duplicated rows canonicalize to the same instance.
        rev = CoverageFunction.from_arrays(
            np.repeat(indptr, 1), np.concatenate([indices[s:e][::-1] for s, e in zip(indptr[:-1], indptr[1:])]),
            n_items=40,
        )
        assert np.array_equal(
            rev.batch_marginals(sel, pool), arr_fn.batch_marginals(sel, pool)
        )
        del rng

    @pytest.mark.parametrize("seed", [0, 1])
    def test_weighted_coverage_from_arrays_matches_mapping_built(self, seed):
        covers, indptr, indices = _coverage_pair(seed)
        w = np.random.default_rng(seed).random(40) * 3
        dict_fn = WeightedCoverageFunction(covers, {j: float(w[j]) for j in range(40)})
        arr_fn = WeightedCoverageFunction.from_arrays(indptr, indices, w)
        sel, pool = [1, 2], list(range(24))
        assert np.allclose(
            arr_fn.batch_marginals(sel, pool),
            dict_fn.batch_marginals(sel, pool),
            rtol=TOL,
            atol=TOL,
        )
        assert arr_fn.value(frozenset(sel)) == pytest.approx(
            dict_fn.value(frozenset(sel)), abs=TOL
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_cut_from_arrays_matches_mapping_built(self, seed):
        edges, u, v, w = _cut_pair(seed)
        dict_fn = CutFunction(range(20), edges)
        arr_fn = CutFunction.from_arrays(20, u, v, w)
        sel, pool = [3, 4], list(range(20))
        for backend in ("dense", "sparse", "naive"):
            assert np.allclose(
                arr_fn.batch_marginals(sel, pool, backend=backend),
                dict_fn.batch_marginals(sel, pool, backend="naive"),
                rtol=TOL,
                atol=TOL,
            ), backend
        # Parallel edges consolidate; self-loops drop.
        doubled = CutFunction.from_arrays(
            20,
            np.concatenate([u, u, [5]]),
            np.concatenate([v, v, [5]]),
            np.concatenate([w, w, [9.0]]),
        )
        want = CutFunction(range(20), [(a, b, 2 * c) for a, b, c in edges])
        assert np.allclose(
            doubled.batch_marginals(sel, pool),
            want.batch_marginals(sel, pool, backend="naive"),
            rtol=TOL,
            atol=TOL,
        )

    def test_additive_from_arrays_matches_mapping_built(self):
        vals = np.random.default_rng(0).random(30)
        dict_fn = AdditiveFunction({i: float(vals[i]) for i in range(30)})
        arr_fn = AdditiveFunction.from_arrays(vals)
        budget = BudgetAdditiveFunction.from_arrays(vals, cap=2.0)
        sel, pool = [2, 9], list(range(30))
        assert np.allclose(
            arr_fn.batch_marginals(sel, pool),
            dict_fn.batch_marginals(sel, pool),
            rtol=TOL,
            atol=TOL,
        )
        bd = BudgetAdditiveFunction({i: float(vals[i]) for i in range(30)}, cap=2.0)
        assert np.allclose(
            budget.batch_marginals(sel, pool),
            bd.batch_marginals(sel, pool),
            rtol=TOL,
            atol=TOL,
        )
        assert budget.fast_evaluator().modular is False
        assert arr_fn.fast_evaluator().modular is True

    def test_from_arrays_payloads_are_content_hashed(self):
        _, indptr, indices = _coverage_pair(0)
        a = CoverageFunction.from_arrays(indptr, indices, n_items=40)
        b = CoverageFunction.from_arrays(indptr.copy(), indices.copy(), n_items=40)
        assert a.canonical_payload() == b.canonical_payload()
        assert a.canonical_payload()["kind"] == "coverage_csr"


class TestSelectionRule:
    def test_explicit_overrides_win(self):
        assert resolve_backend("dense", cells=10**12, nnz=1) == "dense"
        assert resolve_backend("sparse", cells=4, nnz=4) == "sparse"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("turbo", cells=4, nnz=4)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            AdditiveFunction({1: 1.0}).set_default_backend("turbo")

    def test_auto_rule_uses_the_pinned_constants(self):
        # Above the hard cell limit: always sparse.
        assert resolve_backend(None, cells=DENSE_CELL_LIMIT + 1, nnz=0) == "sparse"
        # Below the dense floor: always dense, any density.
        assert resolve_backend(None, cells=DENSE_CELL_MIN, nnz=0) == "dense"
        # In between: density decides.
        mid = DENSE_CELL_MIN * 4
        sparse_nnz = int(SPARSE_DENSITY_CUTOFF * mid) - 1
        assert resolve_backend(None, cells=mid, nnz=sparse_nnz) == "sparse"
        assert resolve_backend(None, cells=mid, nnz=sparse_nnz + 2) == "dense"
        assert resolve_backend("auto", cells=mid, nnz=sparse_nnz) == "sparse"

    def test_auto_picks_sparse_for_large_instances(self):
        n = 40_000
        rng = np.random.default_rng(1)
        indptr = np.arange(n + 1, dtype=np.int64) * 3
        indices = rng.integers(0, n, 3 * n)
        fn = CoverageFunction.from_arrays(indptr, indices, n_items=n)
        assert isinstance(fn.fast_evaluator(), SparseCoverageEvaluator)
        small = CoverageFunction({0: {1, 2}, 1: {2}})
        assert isinstance(small.fast_evaluator(), CoverageEvaluator)

    def test_backends_tuple_is_pinned(self):
        assert KERNEL_BACKENDS == ("auto", "dense", "sparse", "naive")


class TestDegenerateInstances:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_empty_ground_set(self, backend):
        fn = CoverageFunction({})
        assert fn.batch_marginals([], [], backend=backend).shape == (0,)
        cut = CutFunction.from_arrays(0, [], [], [])
        assert cut.batch_marginals([], [], backend=backend).shape == (0,)
        add = AdditiveFunction.from_arrays([])
        assert add.batch_marginals([], [], backend=backend).shape == (0,)

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_single_element_universe(self, backend):
        fn = CoverageFunction({"a": {"u"}, "b": {"u"}, "c": set()})
        got = fn.batch_marginals([], ["a", "b", "c"], backend=backend)
        assert np.array_equal(got, [1.0, 1.0, 0.0])
        ev = fn.incremental_evaluator(backend=backend)
        ev.add("a")
        assert np.array_equal(ev.gains(["b", "c"]), [0.0, 0.0])
        assert ev.current_value == 1.0

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_all_zero_weights(self, backend):
        covers, indptr, indices = _coverage_pair(3)
        fn = WeightedCoverageFunction(covers, {j: 0.0 for j in range(40)})
        pool = sorted(fn.ground_set)
        got = fn.batch_marginals([], pool, backend=backend)
        assert np.array_equal(got, np.zeros(len(pool)))
        arr = WeightedCoverageFunction.from_arrays(indptr, indices, np.zeros(40))
        assert np.array_equal(
            arr.batch_marginals([0], list(range(24)), backend=backend),
            np.zeros(24),
        )

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_candidate_pool_larger_than_ground_set(self, backend):
        covers, _, _ = _coverage_pair(4, n=6, universe=10)
        fn = CoverageFunction(covers)
        pool = list(range(6)) * 4  # repeats: pool >> ground set
        got = fn.batch_marginals([2], pool, backend=backend)
        naive = fn.batch_marginals([2], pool, backend="naive")
        assert np.allclose(got, naive, rtol=TOL, atol=TOL)
        assert len(got) == 24

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_isolated_vertices_and_empty_graph(self, backend):
        cut = CutFunction.from_arrays(5, [], [], [])
        got = cut.batch_marginals([], list(range(5)), backend=backend)
        assert np.array_equal(got, np.zeros(5))
        one = CutFunction.from_arrays(3, [0], [1], [2.0])
        ev = one.incremental_evaluator(backend=backend)
        assert np.array_equal(ev.gains([0, 1, 2]), [2.0, 2.0, 0.0])
        ev.add(0)
        assert np.array_equal(ev.gains([1, 2]), [-2.0, 0.0])


class TestWrapperPassthrough:
    def test_counting_and_cached_forward_backend(self):
        covers, _, _ = _coverage_pair(5)
        fn = CoverageFunction(covers)
        for wrap in (CountingOracle, CachedOracle):
            ev = wrap(fn).fast_evaluator(backend="sparse")
            assert isinstance(getattr(ev, "_inner", ev), SparseCoverageEvaluator)
            assert wrap(fn).fast_evaluator(backend="naive") is None

    def test_counting_bills_equally_on_both_backends(self):
        covers, _, _ = _coverage_pair(6)
        calls = {}
        for backend in ("dense", "sparse"):
            oracle = CountingOracle(CoverageFunction(covers))
            oracle.batch_marginals([0, 1], list(range(24)), backend=backend)
            calls[backend] = oracle.calls
        assert calls["dense"] == calls["sparse"]

    def test_faulty_oracle_forwards_backend(self):
        from repro.online.faults import FaultInjector, FaultPlan

        covers, _, _ = _coverage_pair(7)
        counting = CountingOracle(CoverageFunction(covers))
        faulty = FaultInjector(FaultPlan()).wrap_oracle(counting, "t")
        ev = faulty.fast_evaluator(backend="sparse")
        assert ev is not None and ev.fast
        assert isinstance(ev._inner._inner, SparseCoverageEvaluator)

    def test_arrival_oracle_and_shard_view_forward_backend(self):
        from repro.online.sharding import ShardView
        from repro.secretary.stream import SecretaryStream

        covers, _, _ = _coverage_pair(8)
        fn = CoverageFunction(covers)
        stream = SecretaryStream(fn, rng=0)
        for e in fn.ground_set:
            stream.oracle.reveal(e)
        ev = stream.oracle.fast_evaluator(backend="sparse")
        assert isinstance(ev._inner, SparseCoverageEvaluator)
        view = ShardView(fn, sorted(fn.ground_set)[:5])
        assert isinstance(
            view.fast_evaluator(backend="sparse"), SparseCoverageEvaluator
        )

    def test_set_default_backend_pins_instances(self):
        covers, _, _ = _coverage_pair(9)
        fn = CoverageFunction(covers)
        fn.set_default_backend("sparse")
        assert isinstance(fn.fast_evaluator(), SparseCoverageEvaluator)
        assert isinstance(
            CountingOracle(fn).fast_evaluator()._inner, SparseCoverageEvaluator
        )
        fn.set_default_backend("naive")
        assert not fn.incremental_evaluator().fast
        fn.set_default_backend(None)
        assert isinstance(fn.fast_evaluator(), CoverageEvaluator)
        # Explicit argument beats the pinned default.
        fn.set_default_backend("sparse")
        assert isinstance(fn.fast_evaluator("dense"), CoverageEvaluator)

    def test_stream_utility_threads_backend_param(self):
        from repro.workloads.secretary_streams import stream_utility

        fn = stream_utility("coverage", 20, rng=0, backend="sparse")
        assert isinstance(fn.fast_evaluator(), SparseCoverageEvaluator)
        same = stream_utility("coverage", 20, rng=0)
        assert fn.canonical_payload() == same.canonical_payload()


class TestSubsampling:
    def test_off_by_default_returns_plain_array(self):
        covers, _, _ = _coverage_pair(10)
        fn = CoverageFunction(covers)
        out = fn.batch_marginals([0], list(range(24)))
        assert isinstance(out, np.ndarray)
        assert not isinstance(out, SubsampledMarginals)

    def test_subsample_returns_typed_indices_and_gains(self):
        covers, _, _ = _coverage_pair(11)
        fn = CoverageFunction(covers)
        pool = list(range(24))
        out = fn.batch_marginals([0], pool, subsample=8, seed=3)
        assert isinstance(out, SubsampledMarginals)
        assert len(out.indices) == 8 == len(out.gains)
        assert np.array_equal(out.indices, np.sort(out.indices))
        exact = fn.batch_marginals([0], pool)
        assert np.allclose(out.gains, exact[out.indices], rtol=TOL, atol=TOL)

    def test_subsample_is_seed_deterministic(self):
        covers, _, _ = _coverage_pair(12)
        fn = CoverageFunction(covers)
        pool = list(range(24))
        a = fn.batch_marginals([], pool, subsample=6, seed=7)
        b = fn.batch_marginals([], pool, subsample=6, seed=7)
        c = fn.batch_marginals([], pool, subsample=6, seed=8)
        assert np.array_equal(a.indices, b.indices)
        assert not np.array_equal(a.indices, c.indices)

    def test_subsample_larger_than_pool_scores_everything(self):
        fn = AdditiveFunction({i: float(i) for i in range(5)})
        out = fn.batch_marginals([], list(range(5)), subsample=50)
        assert np.array_equal(out.indices, np.arange(5))

    def test_invalid_subsample_rejected(self):
        fn = AdditiveFunction({1: 1.0})
        with pytest.raises(ValueError, match="subsample"):
            fn.batch_marginals([], [1], subsample=0)


class TestPolicySubsampling:
    def _run(self, n, seed, batched, **policy_kw):
        from repro.core.functions import AdditiveFunction
        from repro.online.policies import SegmentedSubmodularPolicy

        rng = np.random.default_rng(seed)
        fn = AdditiveFunction({f"s{i}": float(rng.random()) for i in range(n)})
        oracle = CountingOracle(fn)
        order = sorted(fn.ground_set)
        list(np.random.default_rng(seed).permuted(np.arange(n)))
        policy = SegmentedSubmodularPolicy(4, **policy_kw)
        policy.bind(oracle, n)
        if batched:
            for start in range(0, n, 7):
                policy.observe_batch(start, order[start:start + 7])
        else:
            for pos, e in enumerate(order):
                policy.observe(pos, e)
        return policy.finish(), oracle.calls

    def test_policy_subsample_off_by_default(self):
        from repro.online.policies import SegmentedSubmodularPolicy

        assert SegmentedSubmodularPolicy(2).subsample is None
        assert "subsample" not in SegmentedSubmodularPolicy(2).config_dict()

    def test_batched_equals_sequential_with_subsample(self):
        for seed in (0, 1):
            seq, seq_calls = self._run(
                60, seed, batched=False, subsample=0.5, subsample_seed=seed
            )
            bat, bat_calls = self._run(
                60, seed, batched=True, subsample=0.5, subsample_seed=seed
            )
            assert seq.selected == bat.selected
            # A mid-batch hire discards the speculative tail scores, so
            # the batched path may bill up to one partial batch more per
            # hire — but never fewer (it drops the same coin).
            assert seq_calls <= bat_calls <= seq_calls + 7 * len(bat.selected)

    def test_subsample_reduces_queries_and_stays_valid(self):
        exact, exact_calls = self._run(120, 3, batched=False)
        sub, sub_calls = self._run(
            120, 3, batched=False, subsample=0.25, subsample_seed=1
        )
        assert sub_calls < exact_calls
        assert len(sub.selected) <= 4

    def test_subsample_config_round_trips(self):
        from repro.online.policies import SegmentedSubmodularPolicy

        p = SegmentedSubmodularPolicy(3, subsample=0.5, subsample_seed=9)
        cfg = p.config_dict()
        assert cfg["subsample"] == 0.5 and cfg["subsample_seed"] == 9
        q = SegmentedSubmodularPolicy.from_config(cfg)
        assert q.subsample == 0.5 and q.subsample_seed == 9

    def test_invalid_subsample_rate_rejected(self):
        from repro.online.policies import SegmentedSubmodularPolicy

        with pytest.raises(InvalidInstanceError, match="subsample"):
            SegmentedSubmodularPolicy(2, subsample=0.0)
        with pytest.raises(InvalidInstanceError, match="subsample"):
            SegmentedSubmodularPolicy(2, subsample=1.5)
