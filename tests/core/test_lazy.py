"""Lazy greedy: agreement with the plain greedy + oracle savings."""

import pytest

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import CoverageFunction
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.oracle import CountingOracle
from repro.errors import InfeasibleError
from repro.rng import as_generator


def random_cover_instance(seed: int, n_items: int = 24, n_sets: int = 14):
    gen = as_generator(seed)
    covers = {}
    costs = {}
    for i in range(n_sets):
        mask = gen.random(n_items) < 0.3
        items = {j for j in range(n_items) if mask[j]} or {int(gen.integers(n_items))}
        covers[f"s{i}"] = items
        costs[f"s{i}"] = float(0.5 + gen.random() * 3.0)
    # Guarantee coverability.
    covered = set().union(*covers.values())
    covers["s0"] = set(covers["s0"]) | (set(range(n_items)) - covered)
    utility = CoverageFunction(covers)
    subsets = {k: frozenset({k}) for k in covers}
    return BudgetedInstance(utility, subsets, costs), n_items


@pytest.mark.parametrize("seed", range(8))
def test_lazy_matches_plain_cost_and_utility(seed):
    inst, n = random_cover_instance(seed)
    eps = 1.0 / (n + 1)
    plain = budgeted_greedy(inst, target=float(n), epsilon=eps)
    lazy = lazy_budgeted_greedy(inst, target=float(n), epsilon=eps)
    # Selections may differ on exact ratio ties; cost and utility agree.
    assert lazy.utility == pytest.approx(plain.utility)
    assert lazy.cost == pytest.approx(plain.cost)


@pytest.mark.parametrize("seed", range(4))
def test_lazy_uses_fewer_oracle_calls(seed):
    inst, n = random_cover_instance(seed, n_items=30, n_sets=20)
    eps = 1.0 / (n + 1)

    counting_plain = CountingOracle(inst.utility)
    plain_inst = BudgetedInstance(counting_plain, dict(inst.subsets), dict(inst.costs))
    budgeted_greedy(plain_inst, target=float(n), epsilon=eps)

    counting_lazy = CountingOracle(inst.utility)
    lazy_inst = BudgetedInstance(counting_lazy, dict(inst.subsets), dict(inst.costs))
    lazy_budgeted_greedy(lazy_inst, target=float(n), epsilon=eps)

    assert counting_lazy.calls <= counting_plain.calls


def test_lazy_infeasible_raises():
    covers = {"a": {1}}
    utility = CoverageFunction(covers)
    inst = BudgetedInstance(utility, {"a": frozenset({"a"})}, {"a": 1.0})
    with pytest.raises(InfeasibleError):
        lazy_budgeted_greedy(inst, target=5.0, epsilon=0.5)


def test_lazy_zero_cost_priority():
    covers = {"free": {1, 2, 3}, "paid": {4}}
    utility = CoverageFunction(covers)
    inst = BudgetedInstance(
        utility,
        {k: frozenset({k}) for k in covers},
        {"free": 0.0, "paid": 1.0},
    )
    result = lazy_budgeted_greedy(inst, target=4.0, epsilon=0.1)
    assert result.chosen[0] == "free"
    assert result.utility == 4.0


def test_lazy_single_step():
    covers = {"all": {1, 2, 3}}
    utility = CoverageFunction(covers)
    inst = BudgetedInstance(utility, {"all": frozenset({"all"})}, {"all": 2.0})
    result = lazy_budgeted_greedy(inst, target=3.0, epsilon=0.25)
    assert result.chosen == ["all"]
    assert len(result.steps) == 1
    assert result.steps[0].gain == pytest.approx(3.0)
