"""BipartiteGraph and Matching value-type tests."""

import pytest

from repro.errors import InvalidInstanceError
from repro.matching.graph import BipartiteGraph, Matching


def small_graph():
    return BipartiteGraph(
        left=["x1", "x2"],
        right=["y1", "y2"],
        edges=[("x1", "y1"), ("x1", "y2"), ("x2", "y2")],
    )


class TestBipartiteGraph:
    def test_sides(self):
        g = small_graph()
        assert g.left == frozenset({"x1", "x2"})
        assert g.right == frozenset({"y1", "y2"})

    def test_neighbors(self):
        g = small_graph()
        assert g.neighbors_of_left("x1") == frozenset({"y1", "y2"})
        assert g.neighbors_of_right("y2") == frozenset({"x1", "x2"})

    def test_edge_count_collapses_duplicates(self):
        g = BipartiteGraph(["x"], ["y"], [("x", "y"), ("x", "y")])
        assert g.edge_count() == 1

    def test_edges_iteration(self):
        g = small_graph()
        assert set(g.edges()) == {("x1", "y1"), ("x1", "y2"), ("x2", "y2")}

    def test_overlapping_sides_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph(["a"], ["a"], [])

    def test_unknown_left_endpoint_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph(["x"], ["y"], [("zz", "y")])

    def test_unknown_right_endpoint_rejected(self):
        with pytest.raises(InvalidInstanceError):
            BipartiteGraph(["x"], ["y"], [("x", "zz")])

    def test_isolated_vertices_allowed(self):
        g = BipartiteGraph(["x"], ["y"], [])
        assert g.neighbors_of_left("x") == frozenset()

    def test_degree_histogram(self):
        g = small_graph()
        assert g.degree_histogram_right() == {1: 1, 2: 1}


class TestMatching:
    def test_match_keeps_maps_in_sync(self):
        m = Matching()
        m.match("x1", "y1")
        assert m.left_to_right == {"x1": "y1"}
        assert m.right_to_left == {"y1": "x1"}

    def test_rematch_removes_old_pairs(self):
        m = Matching()
        m.match("x1", "y1")
        m.match("x1", "y2")
        assert "y1" not in m.right_to_left
        assert m.left_to_right == {"x1": "y2"}

    def test_rematch_right(self):
        m = Matching()
        m.match("x1", "y1")
        m.match("x2", "y1")
        assert "x1" not in m.left_to_right
        assert m.right_to_left == {"y1": "x2"}

    def test_copy_is_independent(self):
        m = Matching()
        m.match("x1", "y1")
        c = m.copy()
        c.match("x2", "y2")
        assert len(m) == 1
        assert len(c) == 2

    def test_len(self):
        m = Matching()
        assert len(m) == 0
        m.match("x1", "y1")
        assert len(m) == 1

    def test_validate_accepts_real_matching(self):
        g = small_graph()
        m = Matching()
        m.match("x1", "y1")
        m.match("x2", "y2")
        m.validate(g)  # should not raise

    def test_validate_rejects_non_edges(self):
        g = small_graph()
        m = Matching()
        m.match("x2", "y1")  # not an edge
        with pytest.raises(InvalidInstanceError):
            m.validate(g)

    def test_validate_rejects_desync(self):
        g = small_graph()
        m = Matching()
        m.left_to_right["x1"] = "y1"  # manual desync, no inverse entry
        with pytest.raises(InvalidInstanceError):
            m.validate(g)

    def test_pairs_sorted(self):
        m = Matching()
        m.match("x2", "y2")
        m.match("x1", "y1")
        assert m.pairs() == [("x1", "y1"), ("x2", "y2")]
