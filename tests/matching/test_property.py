"""Property-based verification of the paper's key structural lemmas.

Lemma 2.2.2: the maximum-cardinality matching function over slot subsets
is monotone submodular.  Lemma 2.3.2: so is the vertex-weighted version.
These are the load-bearing facts of the whole reduction, so we attack
them with hypothesis-generated random bipartite graphs rather than a few
hand examples.
"""

from hypothesis import given, settings, strategies as st

from repro.core.submodular import check_monotone, check_submodular
from repro.matching.graph import BipartiteGraph
from repro.matching.incremental import MatchingUtility, WeightedMatchingUtility


@st.composite
def bipartite_graphs(draw, max_left=6, max_right=5):
    nl = draw(st.integers(min_value=1, max_value=max_left))
    nr = draw(st.integers(min_value=1, max_value=max_right))
    left = [f"x{i}" for i in range(nl)]
    right = [f"y{j}" for j in range(nr)]
    possible = [(x, y) for x in left for y in right]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=len(possible), unique=True)
    )
    return BipartiteGraph(left, right, edges)


@st.composite
def weighted_bipartite_graphs(draw):
    graph = draw(bipartite_graphs())
    values = {
        y: float(draw(st.integers(min_value=0, max_value=8)))
        for y in sorted(graph.right, key=repr)
    }
    return graph, values


@given(bipartite_graphs())
@settings(max_examples=120, deadline=None)
def test_lemma_2_2_2_matching_function_is_submodular(graph):
    fn = MatchingUtility(graph)
    assert check_submodular(fn, exhaustive_limit=6, trials=80, rng=0)


@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_matching_function_is_monotone(graph):
    fn = MatchingUtility(graph)
    assert check_monotone(fn, exhaustive_limit=6, trials=80, rng=0)


@given(weighted_bipartite_graphs())
@settings(max_examples=120, deadline=None)
def test_lemma_2_3_2_weighted_matching_function_is_submodular(graph_and_values):
    graph, values = graph_and_values
    fn = WeightedMatchingUtility(graph, values)
    assert check_submodular(fn, exhaustive_limit=6, trials=80, rng=0)


@given(weighted_bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_weighted_matching_function_is_monotone(graph_and_values):
    graph, values = graph_and_values
    fn = WeightedMatchingUtility(graph, values)
    assert check_monotone(fn, exhaustive_limit=6, trials=80, rng=0)


@given(bipartite_graphs())
@settings(max_examples=60, deadline=None)
def test_matching_function_integer_valued(graph):
    fn = MatchingUtility(graph)
    lefts = sorted(graph.left, key=repr)
    for size in range(len(lefts) + 1):
        v = fn.value(frozenset(lefts[:size]))
        assert v == int(v)
        assert 0 <= v <= min(len(graph.left), len(graph.right))
