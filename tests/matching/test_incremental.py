"""Incremental matching oracle: agreement with from-scratch solves."""

import pytest

from repro.matching.graph import BipartiteGraph
from repro.matching.hopcroft_karp import max_matching_size
from repro.matching.incremental import (
    IncrementalMatchingOracle,
    MatchingUtility,
    WeightedMatchingUtility,
)
from repro.rng import as_generator


def random_bipartite(seed, nl=14, nr=10, p=0.3):
    gen = as_generator(seed)
    left = [f"x{i}" for i in range(nl)]
    right = [f"y{j}" for j in range(nr)]
    edges = [(x, y) for x in left for y in right if gen.random() < p]
    return BipartiteGraph(left, right, edges)


class TestMatchingUtility:
    def test_matches_hopcroft_karp(self):
        g = random_bipartite(0)
        util = MatchingUtility(g)
        for size in (0, 3, 7, len(g.left)):
            subset = frozenset(sorted(g.left, key=repr)[:size])
            assert util.value(subset) == max_matching_size(g, subset)

    def test_ground_set_is_left_side(self):
        g = random_bipartite(1)
        assert MatchingUtility(g).ground_set == g.left


class TestWeightedMatchingUtility:
    def test_value_and_matching_consistent(self):
        g = random_bipartite(2)
        values = {y: float(i + 1) for i, y in enumerate(sorted(g.right, key=repr))}
        util = WeightedMatchingUtility(g, values)
        subset = frozenset(sorted(g.left, key=repr)[:6])
        matching = util.best_matching(subset)
        assert util.value(subset) == pytest.approx(
            sum(values[y] for y in matching.right_to_left)
        )

    def test_monotone_in_slots(self):
        g = random_bipartite(3)
        values = {y: 1.0 for y in g.right}
        util = WeightedMatchingUtility(g, values)
        lefts = sorted(g.left, key=repr)
        prev = 0.0
        for size in range(len(lefts) + 1):
            v = util.value(frozenset(lefts[:size]))
            assert v >= prev
            prev = v


class TestIncrementalOracle:
    @pytest.mark.parametrize("seed", range(8))
    def test_commit_sequence_matches_scratch(self, seed):
        g = random_bipartite(seed)
        gen = as_generator(seed + 500)
        oracle = IncrementalMatchingOracle(g)
        committed = set()
        lefts = sorted(g.left, key=repr)
        for _ in range(6):
            batch_size = int(gen.integers(1, 4))
            idx = gen.choice(len(lefts), size=batch_size, replace=False)
            batch = {lefts[i] for i in idx}
            oracle.commit(batch)
            committed |= batch
            assert len(oracle.matching) == max_matching_size(g, committed)

    @pytest.mark.parametrize("seed", range(8))
    def test_gain_probe_is_nondestructive_and_correct(self, seed):
        g = random_bipartite(seed)
        lefts = sorted(g.left, key=repr)
        oracle = IncrementalMatchingOracle(g, committed=lefts[:4])
        base_size = len(oracle.matching)
        extra = set(lefts[4:8])
        gain = oracle.gain(extra)
        # Probe must not mutate state.
        assert len(oracle.matching) == base_size
        assert oracle.committed == frozenset(lefts[:4])
        # Gain agrees with from-scratch difference.
        expected = max_matching_size(g, set(lefts[:4]) | extra) - max_matching_size(
            g, lefts[:4]
        )
        assert gain == expected

    def test_value_superset_fast_path(self):
        g = random_bipartite(11)
        lefts = sorted(g.left, key=repr)
        oracle = IncrementalMatchingOracle(g, committed=lefts[:5])
        superset = frozenset(lefts[:9])
        assert oracle.value(superset) == max_matching_size(g, superset)

    def test_value_non_superset_falls_back(self):
        g = random_bipartite(12)
        lefts = sorted(g.left, key=repr)
        oracle = IncrementalMatchingOracle(g, committed=lefts[:5])
        other = frozenset(lefts[3:8])  # not a superset of committed
        assert oracle.value(other) == max_matching_size(g, other)

    def test_reset(self):
        g = random_bipartite(13)
        oracle = IncrementalMatchingOracle(g, committed=list(g.left))
        oracle.reset()
        assert oracle.committed == frozenset()
        assert len(oracle.matching) == 0

    def test_commit_returns_gain(self):
        g = BipartiteGraph(["x1", "x2"], ["y1"], [("x1", "y1"), ("x2", "y1")])
        oracle = IncrementalMatchingOracle(g)
        assert oracle.commit({"x1"}) == 1
        assert oracle.commit({"x2"}) == 0  # y1 already matched

    def test_probe_counter_increments(self):
        g = random_bipartite(14)
        oracle = IncrementalMatchingOracle(g)
        before = oracle.probe_augmentations
        oracle.gain(set(sorted(g.left, key=repr)[:3]))
        assert oracle.probe_augmentations == before + 3
