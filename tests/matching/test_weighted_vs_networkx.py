"""Cross-validation of the vertex-weighted matcher against networkx.

A vertex-weighted bipartite matching (weights on jobs) equals a maximum
edge-weighted matching where every edge inherits its job's weight, so
``networkx.max_weight_matching`` provides an independent oracle for our
matroid-greedy implementation on larger graphs than brute force allows.
"""

import networkx as nx
import pytest

from repro.matching.graph import BipartiteGraph
from repro.matching.weighted import weighted_matching_value
from repro.rng import as_generator


def random_weighted(seed, nl=15, nr=12, p=0.25):
    gen = as_generator(seed)
    left = [f"x{i}" for i in range(nl)]
    right = [f"y{j}" for j in range(nr)]
    edges = [(x, y) for x in left for y in right if gen.random() < p]
    values = {y: float(gen.integers(0, 100)) for y in right}
    return BipartiteGraph(left, right, edges), values


def networkx_value(graph, values, allowed=None):
    allowed = graph.left if allowed is None else frozenset(allowed)
    g = nx.Graph()
    for x, y in graph.edges():
        if x in allowed:
            g.add_edge(("L", x), ("R", y), weight=values[y])
    matching = nx.max_weight_matching(g, maxcardinality=False)
    total = 0.0
    for u, v in matching:
        y = u[1] if u[0] == "R" else v[1]
        total += values[y]
    return total


@pytest.mark.parametrize("seed", range(15))
def test_agrees_with_networkx(seed):
    graph, values = random_weighted(seed)
    assert weighted_matching_value(graph, values) == pytest.approx(
        networkx_value(graph, values)
    )


@pytest.mark.parametrize("seed", range(8))
def test_agrees_on_restricted_slots(seed):
    graph, values = random_weighted(seed + 100)
    allowed = frozenset(sorted(graph.left, key=repr)[::2])
    assert weighted_matching_value(graph, values, allowed) == pytest.approx(
        networkx_value(graph, values, allowed)
    )


@pytest.mark.parametrize("seed", range(5))
def test_agrees_with_integer_plus_fractional_weights(seed):
    gen = as_generator(seed + 200)
    graph, _ = random_weighted(seed + 200)
    values = {y: float(gen.random() * 10) for y in graph.right}
    assert weighted_matching_value(graph, values) == pytest.approx(
        networkx_value(graph, values)
    )
