"""Hopcroft–Karp correctness, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.matching.graph import BipartiteGraph, Matching
from repro.matching.hopcroft_karp import augment_from_left, hopcroft_karp, max_matching_size
from repro.rng import as_generator


def random_bipartite(seed: int, nl: int = 12, nr: int = 10, p: float = 0.3):
    gen = as_generator(seed)
    left = [f"x{i}" for i in range(nl)]
    right = [f"y{j}" for j in range(nr)]
    edges = [
        (x, y) for x in left for y in right if gen.random() < p
    ]
    return BipartiteGraph(left, right, edges)


def networkx_max_matching(graph: BipartiteGraph, allowed_left=None) -> int:
    allowed = graph.left if allowed_left is None else frozenset(allowed_left)
    g = nx.Graph()
    g.add_nodes_from([("L", x) for x in allowed], bipartite=0)
    g.add_nodes_from([("R", y) for y in graph.right], bipartite=1)
    for x, y in graph.edges():
        if x in allowed:
            g.add_edge(("L", x), ("R", y))
    matching = nx.bipartite.maximum_matching(g, top_nodes=[("L", x) for x in allowed])
    return len(matching) // 2


class TestHopcroftKarp:
    def test_trivial_cases(self):
        g = BipartiteGraph(["x"], ["y"], [("x", "y")])
        assert max_matching_size(g) == 1
        g2 = BipartiteGraph(["x"], ["y"], [])
        assert max_matching_size(g2) == 0

    def test_perfect_matching(self):
        g = BipartiteGraph(
            ["x1", "x2", "x3"],
            ["y1", "y2", "y3"],
            [("x1", "y1"), ("x2", "y2"), ("x3", "y3"), ("x1", "y2")],
        )
        assert max_matching_size(g) == 3

    def test_augmenting_path_needed(self):
        # Classic case forcing an augmenting path through a matched edge.
        g = BipartiteGraph(
            ["x1", "x2"],
            ["y1", "y2"],
            [("x1", "y1"), ("x1", "y2"), ("x2", "y1")],
        )
        assert max_matching_size(g) == 2

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_networkx_on_random_graphs(self, seed):
        g = random_bipartite(seed)
        assert max_matching_size(g) == networkx_max_matching(g)

    @pytest.mark.parametrize("seed", range(6))
    def test_restricted_left_subsets(self, seed):
        g = random_bipartite(seed)
        gen = as_generator(seed + 1000)
        lefts = sorted(g.left, key=repr)
        mask = gen.random(len(lefts)) < 0.5
        allowed = frozenset(x for x, m in zip(lefts, mask) if m)
        ours = max_matching_size(g, allowed)
        ref = networkx_max_matching(g, allowed)
        assert ours == ref

    def test_result_is_valid_matching(self):
        g = random_bipartite(3)
        m = hopcroft_karp(g)
        m.validate(g)
        # Saturates only left vertices that exist.
        assert set(m.left_to_right) <= set(g.left)

    def test_restricted_saturates_only_allowed(self):
        g = random_bipartite(4)
        allowed = frozenset(sorted(g.left, key=repr)[:5])
        m = hopcroft_karp(g, allowed)
        assert set(m.left_to_right) <= allowed

    def test_seed_matching_warm_start(self):
        g = random_bipartite(5)
        half = frozenset(sorted(g.left, key=repr)[:6])
        m_half = hopcroft_karp(g, half)
        m_full = hopcroft_karp(g, seed_matching=m_half)
        assert len(m_full) == max_matching_size(g)
        m_full.validate(g)


class TestAugmentFromLeft:
    def test_direct_augment(self):
        g = BipartiteGraph(["x1"], ["y1"], [("x1", "y1")])
        m = Matching()
        assert augment_from_left(g, m, "x1", frozenset({"x1"}))
        assert m.left_to_right == {"x1": "y1"}

    def test_alternating_augment(self):
        g = BipartiteGraph(
            ["x1", "x2"],
            ["y1", "y2"],
            [("x1", "y1"), ("x1", "y2"), ("x2", "y1")],
        )
        m = Matching()
        m.match("x1", "y1")
        assert augment_from_left(g, m, "x2", frozenset({"x1", "x2"}))
        assert len(m) == 2
        m.validate(g)

    def test_failed_augment_leaves_matching_unchanged(self):
        g = BipartiteGraph(["x1", "x2"], ["y1"], [("x1", "y1"), ("x2", "y1")])
        m = Matching()
        m.match("x1", "y1")
        before = m.copy()
        assert not augment_from_left(g, m, "x2", frozenset({"x1", "x2"}))
        assert m.left_to_right == before.left_to_right

    def test_matched_start_refused(self):
        g = BipartiteGraph(["x1"], ["y1"], [("x1", "y1")])
        m = Matching()
        m.match("x1", "y1")
        assert not augment_from_left(g, m, "x1", frozenset({"x1"}))

    def test_disallowed_start_refused(self):
        g = BipartiteGraph(["x1"], ["y1"], [("x1", "y1")])
        m = Matching()
        assert not augment_from_left(g, m, "x1", frozenset())
