"""Vertex-weighted matching: matroid-greedy optimality vs. brute force."""

from itertools import combinations

import pytest

from repro.matching.graph import BipartiteGraph
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.matching.weighted import max_weight_matching, weighted_matching_value
from repro.rng import as_generator


def brute_force_value(graph, values, allowed):
    """Max total value of any matchable job subset (exponential)."""
    jobs = sorted(graph.right, key=repr)
    best = 0.0
    for r in range(len(jobs) + 1):
        for combo in combinations(jobs, r):
            # Feasible iff a matching saturating all of combo exists.
            sub = BipartiteGraph(
                graph.left,
                combo,
                [(x, y) for x, y in graph.edges() if y in combo and x in allowed],
            )
            m = hopcroft_karp(sub, allowed)
            if len(m) == len(combo):
                best = max(best, sum(values[y] for y in combo))
    return best


def random_weighted(seed, nl=6, nr=5, p=0.4):
    gen = as_generator(seed)
    left = [f"x{i}" for i in range(nl)]
    right = [f"y{j}" for j in range(nr)]
    edges = [(x, y) for x in left for y in right if gen.random() < p]
    values = {y: float(gen.integers(0, 10)) for y in right}
    return BipartiteGraph(left, right, edges), values


class TestMaxWeightMatching:
    def test_prefers_heavy_job(self):
        g = BipartiteGraph(["x"], ["cheap", "dear"], [("x", "cheap"), ("x", "dear")])
        values = {"cheap": 1.0, "dear": 10.0}
        m = max_weight_matching(g, values)
        assert m.right_to_left == {"dear": "x"}

    def test_heavy_job_displaces_via_augmenting_path(self):
        # dear can only use x1; cheap can use x1 or x2. Optimal: both.
        g = BipartiteGraph(
            ["x1", "x2"],
            ["cheap", "dear"],
            [("x1", "cheap"), ("x2", "cheap"), ("x1", "dear")],
        )
        values = {"cheap": 1.0, "dear": 10.0}
        m = max_weight_matching(g, values)
        assert len(m) == 2
        assert m.right_to_left["dear"] == "x1"

    def test_zero_value_jobs_still_scheduled(self):
        g = BipartiteGraph(["x1", "x2"], ["a", "b"], [("x1", "a"), ("x2", "b")])
        m = max_weight_matching(g, {"a": 0.0, "b": 1.0})
        assert len(m) == 2

    def test_negative_values_rejected(self):
        g = BipartiteGraph(["x"], ["y"], [("x", "y")])
        with pytest.raises(ValueError):
            max_weight_matching(g, {"y": -1.0})

    def test_restricted_slots(self):
        g = BipartiteGraph(
            ["x1", "x2"], ["a", "b"], [("x1", "a"), ("x2", "b")]
        )
        values = {"a": 5.0, "b": 3.0}
        assert weighted_matching_value(g, values, {"x2"}) == 3.0
        assert weighted_matching_value(g, values, {"x1", "x2"}) == 8.0
        assert weighted_matching_value(g, values, set()) == 0.0

    @pytest.mark.parametrize("seed", range(10))
    def test_optimal_against_brute_force(self, seed):
        g, values = random_weighted(seed)
        assert weighted_matching_value(g, values) == pytest.approx(
            brute_force_value(g, values, g.left)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_optimal_on_restricted_slots(self, seed):
        g, values = random_weighted(seed)
        allowed = frozenset(sorted(g.left, key=repr)[:3])
        assert weighted_matching_value(g, values, allowed) == pytest.approx(
            brute_force_value(g, values, allowed)
        )

    def test_all_equal_values_matches_cardinality(self):
        g, _ = random_weighted(42)
        values = {y: 1.0 for y in g.right}
        m = max_weight_matching(g, values)
        assert len(m) == len(hopcroft_karp(g))

    def test_result_validates(self):
        g, values = random_weighted(7)
        m = max_weight_matching(g, values)
        m.validate(g)
