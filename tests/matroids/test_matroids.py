"""Matroid families: axioms, ranks, and family-specific behaviour."""

import pytest

from repro.errors import InvalidInstanceError
from repro.matroids import (
    GraphicMatroid,
    LaminarMatroid,
    PartitionMatroid,
    TransversalMatroid,
    UniformMatroid,
    check_matroid_axioms,
)
from repro.rng import as_generator


class TestUniform:
    def test_independence(self):
        m = UniformMatroid({1, 2, 3}, k=2)
        assert m.is_independent([])
        assert m.is_independent([1, 2])
        assert not m.is_independent([1, 2, 3])

    def test_rank(self):
        m = UniformMatroid({1, 2, 3, 4}, k=2)
        assert m.rank() == 2
        assert m.rank({1}) == 1

    def test_outside_elements_dependent(self):
        m = UniformMatroid({1}, k=5)
        assert not m.is_independent([99])

    def test_k_zero(self):
        m = UniformMatroid({1, 2}, k=0)
        assert m.is_independent([])
        assert not m.is_independent([1])

    def test_negative_k_rejected(self):
        with pytest.raises(InvalidInstanceError):
            UniformMatroid({1}, k=-1)

    def test_axioms(self):
        assert check_matroid_axioms(UniformMatroid({1, 2, 3, 4, 5}, k=2))


class TestPartition:
    def make(self):
        blocks = {e: e % 3 for e in range(9)}
        return PartitionMatroid(blocks, capacities={0: 1, 1: 2, 2: 0})

    def test_capacities_respected(self):
        m = self.make()
        assert m.is_independent([0])        # block 0 cap 1
        assert not m.is_independent([0, 3])  # two from block 0
        assert m.is_independent([1, 4])      # block 1 cap 2
        assert not m.is_independent([2])     # block 2 cap 0

    def test_default_capacity_is_one(self):
        m = PartitionMatroid({1: "a", 2: "a"})
        assert m.is_independent([1])
        assert not m.is_independent([1, 2])

    def test_rank_closed_form(self):
        m = self.make()
        assert m.rank() == 1 + 2 + 0
        assert m.rank([0, 3, 6, 1]) == 1 + 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidInstanceError):
            PartitionMatroid({1: "a"}, capacities={"a": -1})

    def test_axioms(self):
        blocks = {e: e % 2 for e in range(6)}
        assert check_matroid_axioms(PartitionMatroid(blocks, {0: 2, 1: 1}))


class TestGraphic:
    def triangle_plus_tail(self):
        return GraphicMatroid(
            {"e0": ("a", "b"), "e1": ("b", "c"), "e2": ("a", "c"), "e3": ("c", "d")}
        )

    def test_forest_independent(self):
        m = self.triangle_plus_tail()
        assert m.is_independent(["e0", "e1", "e3"])

    def test_cycle_dependent(self):
        m = self.triangle_plus_tail()
        assert not m.is_independent(["e0", "e1", "e2"])

    def test_self_loop_dependent(self):
        m = GraphicMatroid({"loop": ("a", "a")})
        assert not m.is_independent(["loop"])

    def test_parallel_edges(self):
        m = GraphicMatroid({"e0": ("a", "b"), "e1": ("a", "b")})
        assert m.is_independent(["e0"])
        assert not m.is_independent(["e0", "e1"])

    def test_rank_is_spanning_forest(self):
        m = self.triangle_plus_tail()
        assert m.rank() == 3  # 4 vertices, connected

    def test_non_dict_rejected(self):
        with pytest.raises(InvalidInstanceError):
            GraphicMatroid([("a", "b")])

    def test_axioms(self):
        assert check_matroid_axioms(self.triangle_plus_tail())

    def test_axioms_on_random_graph(self):
        gen = as_generator(7)
        edges = {
            f"e{i}": (int(gen.integers(5)), int(gen.integers(5))) for i in range(8)
        }
        assert check_matroid_axioms(GraphicMatroid(edges))


class TestTransversal:
    def test_matchable_independent(self):
        m = TransversalMatroid({"a": [1, 2], "b": [2], "c": [3]})
        assert m.is_independent(["a", "b", "c"])

    def test_overloaded_resource_dependent(self):
        m = TransversalMatroid({"a": [1], "b": [1]})
        assert m.is_independent(["a"])
        assert not m.is_independent(["a", "b"])

    def test_empty_adjacency_is_loop(self):
        m = TransversalMatroid({"a": [], "b": [1]})
        assert not m.is_independent(["a"])

    def test_rank(self):
        m = TransversalMatroid({"a": [1], "b": [1], "c": [2]})
        assert m.rank() == 2

    def test_axioms(self):
        m = TransversalMatroid({"a": [1, 2], "b": [2, 3], "c": [1], "d": [3]})
        assert check_matroid_axioms(m)


class TestLaminar:
    def make(self):
        ground = {"a", "b", "c", "d"}
        family = {
            "inner": ({"a", "b"}, 1),
            "outer": ({"a", "b", "c"}, 2),
        }
        return LaminarMatroid(ground, family)

    def test_nested_capacities(self):
        m = self.make()
        assert m.is_independent(["a", "c"])
        assert not m.is_independent(["a", "b"])       # inner cap 1
        assert not m.is_independent(["a", "c", "b"])  # outer cap 2 + inner
        assert m.is_independent(["a", "c", "d"])      # d unconstrained

    def test_non_laminar_rejected(self):
        with pytest.raises(InvalidInstanceError):
            LaminarMatroid(
                {"a", "b", "c"},
                {"x": ({"a", "b"}, 1), "y": ({"b", "c"}, 1)},
            )

    def test_non_ground_members_rejected(self):
        with pytest.raises(InvalidInstanceError):
            LaminarMatroid({"a"}, {"x": ({"a", "zz"}, 1)})

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidInstanceError):
            LaminarMatroid({"a"}, {"x": ({"a"}, -1)})

    def test_axioms(self):
        assert check_matroid_axioms(self.make())

    def test_generalises_partition(self):
        # Disjoint family sets = partition matroid.
        ground = set(range(6))
        family = {"b0": ({0, 1, 2}, 1), "b1": ({3, 4, 5}, 2)}
        m = LaminarMatroid(ground, family)
        assert m.rank() == 6 - 3  # greedy picks 1 + 2 from the blocks...

    def test_rank_via_greedy(self):
        ground = set(range(4))
        m = LaminarMatroid(ground, {"all": (ground, 2)})
        assert m.rank() == 2


class TestDerivedQueries:
    def test_max_independent_subset_is_independent(self):
        m = GraphicMatroid({"e0": ("a", "b"), "e1": ("b", "c"), "e2": ("a", "c")})
        basis = m.max_independent_subset()
        assert m.is_independent(basis)
        assert len(basis) == m.rank()

    def test_stray_elements_rejected_in_rank(self):
        m = GraphicMatroid({"e0": ("a", "b")})
        with pytest.raises(InvalidInstanceError):
            m.rank({"zz"})

    def test_uniform_rank_ignores_stray(self):
        # UniformMatroid uses a closed form that intersects with the
        # ground set rather than raising (documented difference).
        m = UniformMatroid({1, 2}, k=1)
        assert m.rank({99}) == 0

    def test_can_add(self):
        m = UniformMatroid({1, 2, 3}, k=2)
        assert m.can_add([1], 2)
        assert not m.can_add([1, 2], 3)
        assert m.can_add([1, 2], 1)  # already a member
