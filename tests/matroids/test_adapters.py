"""Truncation and intersection adapters."""

import pytest

from repro.errors import InvalidInstanceError
from repro.matroids import (
    GraphicMatroid,
    MatroidIntersection,
    PartitionMatroid,
    TruncatedMatroid,
    UniformMatroid,
    check_matroid_axioms,
)


class TestTruncation:
    def base(self):
        return GraphicMatroid(
            {"e0": ("a", "b"), "e1": ("b", "c"), "e2": ("c", "d"), "e3": ("a", "c")}
        )

    def test_caps_size(self):
        t = TruncatedMatroid(self.base(), 2)
        assert t.is_independent(["e0", "e1"])
        assert not t.is_independent(["e0", "e1", "e2"])

    def test_still_respects_base(self):
        # {e0, e1, e3} is a cycle: dependent regardless of size cap.
        t = TruncatedMatroid(self.base(), 3)
        assert not t.is_independent(["e0", "e1", "e3"])

    def test_rank(self):
        t = TruncatedMatroid(self.base(), 2)
        assert t.rank() == 2
        assert TruncatedMatroid(self.base(), 99).rank() == self.base().rank()

    def test_truncation_is_a_matroid(self):
        assert check_matroid_axioms(TruncatedMatroid(self.base(), 2))

    def test_zero_truncation(self):
        t = TruncatedMatroid(self.base(), 0)
        assert t.is_independent([])
        assert not t.is_independent(["e0"])

    def test_negative_rejected(self):
        with pytest.raises(InvalidInstanceError):
            TruncatedMatroid(self.base(), -1)


class TestIntersection:
    def test_conjunction_semantics(self):
        ground = {1, 2, 3, 4}
        u = UniformMatroid(ground, k=2)
        p = PartitionMatroid({e: e % 2 for e in ground}, {0: 1, 1: 2})
        inter = MatroidIntersection([u, p])
        assert inter.is_independent([1, 3])       # sizes ok, blocks ok
        assert not inter.is_independent([2, 4])   # block 0 capacity 1
        assert not inter.is_independent([1, 2, 3])  # uniform k=2

    def test_ground_is_common(self):
        u = UniformMatroid({1, 2, 3}, k=2)
        v = UniformMatroid({2, 3, 4}, k=2)
        inter = MatroidIntersection([u, v])
        assert inter.ground_set == frozenset({2, 3})
        assert not inter.is_independent([1])

    def test_empty_list_rejected(self):
        with pytest.raises(InvalidInstanceError):
            MatroidIntersection([])

    def test_single_matroid_passthrough(self):
        u = UniformMatroid({1, 2, 3}, k=1)
        inter = MatroidIntersection([u])
        assert check_matroid_axioms(inter)  # one matroid stays a matroid

    def test_intersection_can_violate_augmentation(self):
        # Classic witness: two partition matroids whose intersection is
        # a bipartite-matching independence system — not a matroid.
        ground = {"x", "y", "z"}
        m1 = PartitionMatroid({"x": 0, "y": 0, "z": 1}, {0: 1, 1: 1})
        m2 = PartitionMatroid({"x": 0, "y": 1, "z": 1}, {0: 1, 1: 1})
        inter = MatroidIntersection([m1, m2])
        # {y, z}? y: m1 block0, m2 block1; z: m1 block1, m2 block1 ->
        # m2 block1 has y and z: dependent. Try {x, z}: m1 blocks 0,1 ok;
        # m2 blocks 0,1 ok -> independent size 2. {y} independent size 1,
        # but neither x nor z can always be added... check axioms fail:
        with pytest.raises(InvalidInstanceError):
            check_matroid_axioms(inter)
