"""Elastic shard topology: partition maps, S -> S' resharding, stealing.

The PR's pinned contract, layer by layer:

- :class:`PartitionMap` replays its epoch history deterministically —
  consumed prefixes stay pinned to their lanes in consumption order and
  every unconsumed element lands in exactly one lane's suffix.
- ``reshard_session`` keeps every consumed arrival, hire, and
  fingerprint chain exactly where it was: an S -> S' -> S round trip is
  byte-identical to never resharding, and a resume through a reshard
  hop matches the straight-through run on hires, value, and
  oracle-call counts — at every suspend point.
- Never-resharded manifests keep the v2 schema byte-for-byte; resharded
  ones bump to v3 and carry the epoch history across further
  suspend/resume hops.
- The serving loop's ``autoscale`` knob steals unconsumed suffix from
  hot lanes onto idle ones mid-serve; the no-autoscale path is
  untouched.
"""

import json

import pytest

from repro.cli import main
from repro.errors import InvalidInstanceError
from repro.online.arrivals import arrival_process_names, source_from_spec
from repro.online.checkpoint import (
    SHARDED_MANIFEST_SCHEMA_VERSION,
    SUPPORTED_MANIFEST_VERSIONS,
    write_tenant_checkpoint,
)
from repro.online.session import (
    SESSION_POLICIES,
    reshard_session,
    resume_any_session,
    start_sharded_session,
    start_session,
)
from repro.online.sharding import (
    PartitionMap,
    partition_from_manifest,
    partition_lane_source,
    shard_of,
)

from tests.online.procutil import process_params

N, K, SEED = 16, 3, 20100612
ALL_PROCESSES = arrival_process_names()


def _params(process, family="additive", n=N, seed=SEED):
    if process != "replay":
        return {}
    from repro.online.session import build_workload

    fn, _ = build_workload({"family": family, "n": n, "seed": seed})
    return process_params(process, fn)


def _canon(payload):
    return json.dumps(payload, sort_keys=True, allow_nan=False)


def _rt(payload):
    return json.loads(_canon(payload))


class TestPartitionMap:
    def test_base_map_matches_plain_hash(self):
        pm = PartitionMap.base(4, salt=9)
        assert pm.single_epoch and pm.epoch == 0
        assert pm.num_shards == 4 and pm.salt == 9
        for e in ("a", "b", 17, "s3"):
            assert pm.assign(e) == shard_of(e, 4, 9)

    def test_payload_round_trip(self):
        pm = PartitionMap.base(2, salt=1).reshard(5, [3, 0], salt=7)
        back = PartitionMap.from_payload(_rt(pm.payload()))
        assert back.payload() == pm.payload()
        assert back.epoch == 1 and back.num_shards == 5 and back.salt == 7

    def test_reshard_salt_defaults_to_current(self):
        pm = PartitionMap.base(2, salt=42).reshard(4, [1, 1])
        assert pm.salt == 42

    def test_lane_streams_pins_consumed_and_splits_suffix_exactly_once(self):
        order = [f"e{i}" for i in range(20)]
        base = PartitionMap.base(2, salt=0)
        lanes0 = [base.assign(e) for e in order]
        consumed = [3, 2]
        pm = base.reshard(4, consumed)
        streams = pm.lane_streams(order)
        assert len(streams) == pm.lane_count() == 4
        # Pinned prefixes are exactly each lane's first `consumed`
        # positions, in the order the lane consumed them.
        for a in (0, 1):
            expect = [p for p in range(20) if lanes0[p] == a][:consumed[a]]
            assert streams[a][0] == expect
        assert streams[2][0] == [] and streams[3][0] == []
        # Every position lands in exactly one lane, pinned or suffix.
        seen = sorted(
            p for pinned, suffix in streams for p in (*pinned, *suffix)
        )
        assert seen == list(range(20))
        # Unconsumed positions re-hash under the newest epoch.
        pinned_set = {p for pinned, _ in streams for p in pinned}
        for a, (_, suffix) in enumerate(streams):
            for p in suffix:
                assert p not in pinned_set
                assert pm.assign(order[p]) == a

    def test_round_trip_reshard_restores_assignment(self):
        order = [f"e{i}" for i in range(18)]
        base = PartitionMap.base(3, salt=5)
        pm = base.reshard(6, [2, 1, 2]).reshard(3, [2, 1, 2, 0, 0, 0])
        streams = pm.lane_streams(order)
        # With nothing consumed during the 6-lane epoch, the suffix
        # assignment under the final epoch equals the base hash.
        for a, (_, suffix) in enumerate(streams[:3]):
            for p in suffix:
                assert base.assign(order[p]) == a
        assert all(not s for _, s in streams[3:])

    def test_validation_errors(self):
        with pytest.raises(InvalidInstanceError, match="at least one epoch"):
            PartitionMap([])
        with pytest.raises(InvalidInstanceError, match="num_shards"):
            PartitionMap.base(0)
        with pytest.raises(InvalidInstanceError, match="epoch 0"):
            PartitionMap([{"num_shards": 2, "salt": 0, "consumed": [1]}])
        with pytest.raises(InvalidInstanceError, match="consumed"):
            PartitionMap([{"num_shards": 2, "salt": 0}, {"num_shards": 3}])
        with pytest.raises(InvalidInstanceError, match="epochs"):
            PartitionMap.from_payload({"nope": []})
        pm = PartitionMap.base(2).reshard(2, [50, 0])
        with pytest.raises(InvalidInstanceError, match="exceeds the stream"):
            pm.lane_streams([f"e{i}" for i in range(6)])


class TestReshardSession:
    @pytest.mark.parametrize("policy", SESSION_POLICIES)
    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_round_trip_matches_straight_through(self, policy, process):
        kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=7,
                      process=process, shards=2,
                      process_params=_params(process))
        straight = start_sharded_session(**kwargs).advance().summary()
        session = start_sharded_session(**kwargs).advance(N // 2)
        ck = _rt(session.checkpoint())
        plain = resume_any_session(_rt(ck)).advance().summary()
        hop = reshard_session(_rt(reshard_session(ck, 4)), 2)
        got = resume_any_session(hop).advance().summary()
        # The round trip is byte-identical to a plain resume from the
        # same checkpoint (cursors, fingerprints, oracle accounting —
        # everything), and matches the straight-through run on every
        # decision-level key.  Final cursors and oracle totals may
        # differ from the *uninterrupted* run when a policy finishes
        # mid-batch (the straight run consumes to the batch end before
        # noticing) — the same established semantics as any resume.
        assert _canon(got) == _canon(plain)
        for key in ("selected", "value", "n_chosen"):
            assert got[key] == straight[key], (key, got[key], straight[key])

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_identity_reshard_is_byte_identical(self, process):
        session = start_sharded_session(
            n=N, k=K, seed=3, process=process, shards=2,
            process_params=_params(process),
        ).advance(6)
        ck = _rt(session.checkpoint())
        assert _canon(reshard_session(_rt(ck), 2)) == _canon(ck)

    def test_consumed_prefix_and_fingerprints_carried_verbatim(self):
        session = start_sharded_session(
            n=N, k=K, seed=5, process="bursty", shards=2,
        ).advance(9)
        ck = _rt(session.checkpoint())
        out = reshard_session(_rt(ck), 4)
        assert out["schema_version"] == SHARDED_MANIFEST_SCHEMA_VERSION
        for old, new in zip(ck["shards"], out["shards"]):
            assert new["cursor"] == old["cursor"]
            assert new["decisions"] == old["decisions"]
            assert new["policy"] == old["policy"]
            # The fingerprint chain re-anchors: the carried lane keeps
            # its chain verbatim and new arrivals extend it.
            assert (new["source"]["state"]["fingerprint"]
                    == old["source"]["state"]["fingerprint"])

    def test_suffix_split_exactly_once_across_lanes(self):
        from repro.online.session import build_workload

        session = start_sharded_session(
            n=N, k=K, seed=5, process="poisson", shards=2,
        ).advance(7)
        ck = _rt(session.checkpoint())
        fn, _ = build_workload(ck["instance"])
        out = reshard_session(_rt(ck), 3)
        orders = []
        total = 0
        for entry in out["shards"]:
            src = source_from_spec(entry["source"], fn)
            sched = src.materialize()
            total += len(sched.order)
            orders.extend(sched.order)
        assert total == N
        assert len(set(orders)) == N

    @pytest.mark.parametrize("policy,process", [
        ("monotone", "bursty"), ("nonmonotone", "poisson"),
    ])
    def test_resume_through_reshard_hop_at_every_suspend_point(
        self, policy, process
    ):
        kwargs = dict(policy=policy, n=N, k=K, seed=11, process=process,
                      shards=2)
        straight = start_sharded_session(**kwargs).advance().summary()
        for stop in range(1, N):
            session = start_sharded_session(**kwargs).advance(stop)
            if session.finished:
                break
            # A full S -> S' -> S hop at this suspend point (no progress
            # at the intermediate width, so the original assignment is
            # restored), then resume to completion.
            hop = reshard_session(_rt(session.checkpoint()), 3)
            back = reshard_session(_rt(hop), 2)
            summary = resume_any_session(_rt(back)).advance().summary()
            for key in ("selected", "value", "n_chosen"):
                assert summary[key] == straight[key], (stop, key)

    def test_schema_v3_survives_suspend_resume_hops(self):
        session = start_sharded_session(
            n=N, k=K, seed=9, process="bursty", shards=2,
        ).advance(6)
        out = reshard_session(_rt(session.checkpoint()), 4)
        resumed = resume_any_session(_rt(out)).advance(4)
        again = _rt(resumed.checkpoint())
        assert again["schema_version"] == SHARDED_MANIFEST_SCHEMA_VERSION
        pm = partition_from_manifest(again)
        assert pm.epoch == 1 and pm.num_shards == 4
        # and it reshards again, growing the history
        back = reshard_session(again, 2)
        assert partition_from_manifest(back).epoch == 2
        final = resume_any_session(back).advance().summary()
        assert final["finished"] is True

    def test_never_resharded_manifest_keeps_v2_bytes(self):
        session = start_sharded_session(
            n=N, k=K, seed=9, process="bursty", shards=2,
        ).advance(6)
        ck = _rt(session.checkpoint())
        assert ck["schema_version"] == 2
        assert "partition" not in ck
        assert 2 in SUPPORTED_MANIFEST_VERSIONS
        assert SHARDED_MANIFEST_SCHEMA_VERSION in SUPPORTED_MANIFEST_VERSIONS

    def test_grow_beyond_suffix_leaves_empty_fresh_lanes(self):
        session = start_sharded_session(
            n=12, k=2, seed=2, shards=2,
        ).advance(10)
        out = reshard_session(_rt(session.checkpoint()), 6)
        assert out["num_shards"] == 6
        summary = resume_any_session(out).advance().summary()
        assert summary["finished"] is True

    def test_reshard_errors(self):
        sharded = start_sharded_session(n=12, k=2, seed=1, shards=2)
        sharded.advance(4)
        ck = _rt(sharded.checkpoint())
        with pytest.raises(InvalidInstanceError, match="shards"):
            reshard_session(ck, 0)
        plain = start_session(n=12, k=2, seed=1).advance(4)
        with pytest.raises(InvalidInstanceError, match="sharded"):
            reshard_session(_rt(plain.checkpoint()), 2)

    def test_partition_lane_source_spec_round_trip(self):
        from repro.online.session import build_workload

        session = start_sharded_session(
            n=N, k=K, seed=4, process="bursty", shards=2,
        ).advance(8)
        ck = _rt(session.checkpoint())
        fn, _ = build_workload(ck["instance"])
        pm = partition_from_manifest(ck).reshard(
            3, [entry["cursor"] for entry in ck["shards"]]
        )
        parent = source_from_spec(
            {k: v for k, v in ck["shards"][0]["source"].items()
             if k not in ("shard", "state")},
            fn,
        )
        lane = partition_lane_source(parent, 1, pm)
        spec = _rt(lane.spec())
        back = source_from_spec(spec, fn)
        assert _canon(back.spec()) == _canon(spec)
        assert back.materialize().order == lane.materialize().order


class TestElasticServing:
    def _run(self, specs, **kwargs):
        import asyncio

        from repro.online.serving import ServingLoop

        loop = ServingLoop(specs, **kwargs)
        return asyncio.run(loop.serve_async(install_signals=False))

    def test_autoscale_validation(self):
        from repro.online.serving import ServingLoop, TenantSpec

        spec = TenantSpec("t", n=10)
        with pytest.raises(InvalidInstanceError, match="autoscale"):
            ServingLoop([spec], autoscale=(0, 2))
        with pytest.raises(InvalidInstanceError, match="autoscale"):
            ServingLoop([spec], autoscale=(4, 2))
        with pytest.raises(InvalidInstanceError, match="autoscale"):
            ServingLoop([spec], autoscale=(1, 2), memory_budget=1,
                        checkpoint_root="/tmp/unused")

    def test_elastic_serve_finishes_and_reports(self):
        from repro.online.serving import TenantSpec

        specs = [
            TenantSpec("a", policy="monotone", n=24, k=3, seed=11,
                       process="bursty"),
            TenantSpec("b", policy="nonmonotone", family="coverage", n=30,
                       k=4, seed=12, shards=2),
        ]
        report = self._run(specs, autoscale=(1, 4), pace_seconds=0.0005)
        assert report["totals"]["autoscale"] == [1, 4]
        assert report["totals"]["finished"] == 2
        for tid, k in (("a", 3), ("b", 4)):
            tenant = report["tenants"][tid]
            assert tenant["finished"] is True
            assert tenant["n_chosen"] <= k
            assert tenant["rebinds"] >= 0 and tenant["lanes"] >= 1

    def test_skewed_load_triggers_work_stealing(self, tmp_path):
        from repro.online.serving import TenantSpec

        session = start_sharded_session(
            policy="monotone", family="additive", n=40, k=4, seed=7,
            shards=2,
        )
        session.advance_shard(1)  # lane 1 runs dry; lane 0 untouched
        remaining = [r.n - r.cursor for r in session.run.runs]
        assert remaining[1] == 0 and remaining[0] > 2
        write_tenant_checkpoint(session.checkpoint(), str(tmp_path), "hot")
        spec = TenantSpec("hot", policy="monotone", family="additive",
                          n=40, k=4, seed=7, shards=2)
        report = self._run(
            [spec], checkpoint_root=str(tmp_path), resume=True,
            autoscale=(2, 2), pace_seconds=0.002,
        )
        hot = report["tenants"]["hot"]
        assert hot["finished"] is True
        assert hot["rebinds"] >= 1
        assert hot["n_chosen"] <= 4 and hot["value"] > 0

    def test_no_autoscale_report_has_no_elastic_keys(self):
        from repro.online.serving import TenantSpec

        report = self._run([TenantSpec("t", n=12, k=2, seed=1)])
        assert "autoscale" not in report["totals"]
        assert "rebinds" not in report["tenants"]["t"]


class TestReshardCLI:
    def _run_suspended(self, tmp_path, capsys, shards="2"):
        ck = str(tmp_path / "m.json")
        assert main([
            "online", "run", "--policy", "monotone", "--process", "bursty",
            "--n", "30", "--k", "4", "--seed", "5", "--shards", shards,
            "--max-arrivals", "12", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        return ck

    def test_reshard_resume_round_trip(self, tmp_path, capsys):
        ck = self._run_suspended(tmp_path, capsys)
        out = str(tmp_path / "m4.json")
        assert main(["online", "reshard", ck, "--shards", "4",
                     "--output", out]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_shards"] == 4
        assert payload["partition_epoch"] == 1
        assert payload["schema_version"] == SHARDED_MANIFEST_SCHEMA_VERSION

        assert main(["online", "inspect", out]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["partition"]["epoch"] == 1
        assert [e["num_shards"] for e in info["partition"]["history"]] \
            == [2, 4]
        assert info["shards"][0]["shard"]["partition_epoch"] == 1

        assert main(["online", "resume", out,
                     "--checkpoint", str(tmp_path / "m4b.json")]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["finished"] is True

    def test_reshard_rejects_bad_inputs(self, tmp_path, capsys):
        ck = self._run_suspended(tmp_path, capsys)
        assert main(["online", "reshard", ck, "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        plain = str(tmp_path / "plain.json")
        assert main(["online", "run", "--n", "20", "--max-arrivals", "5",
                     "--checkpoint", plain]) == 0
        capsys.readouterr()
        assert main(["online", "reshard", plain, "--shards", "2"]) == 2
        assert "sharded" in capsys.readouterr().err

    def test_run_resume_flag_validation(self, tmp_path, capsys):
        assert main(["online", "run", "--n", "10", "--workers", "-2"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["online", "run", "--n", "10",
                     "--max-arrivals", "-5"]) == 2
        assert "--max-arrivals" in capsys.readouterr().err
        ck = self._run_suspended(tmp_path, capsys)
        assert main(["online", "resume", ck, "--workers", "-1"]) == 2
        assert "--workers" in capsys.readouterr().err
        assert main(["online", "resume", ck, "--max-arrivals", "-1"]) == 2
        assert "--max-arrivals" in capsys.readouterr().err

    def test_serve_autoscale_flag_validation(self, tmp_path, capsys):
        spec_file = str(tmp_path / "tenants.json")
        with open(spec_file, "w", encoding="utf-8") as fh:
            json.dump([{"id": "t", "n": 10, "k": 2}], fh)
        assert main(["online", "serve", spec_file,
                     "--autoscale", "4:2"]) == 2
        assert "--autoscale" in capsys.readouterr().err
        assert main(["online", "serve", spec_file,
                     "--autoscale", "nope"]) == 2
        assert "--autoscale" in capsys.readouterr().err

    def test_serve_autoscale_end_to_end(self, tmp_path, capsys):
        spec_file = str(tmp_path / "tenants.json")
        with open(spec_file, "w", encoding="utf-8") as fh:
            json.dump([
                {"id": "t1", "policy": "monotone", "n": 24, "k": 3,
                 "seed": 3, "process": "bursty"},
                {"id": "t2", "policy": "nonmonotone", "family": "coverage",
                 "n": 20, "k": 3, "seed": 4, "shards": 2},
            ], fh)
        assert main(["online", "serve", spec_file, "--autoscale", "1:4",
                     "--pace-seconds", "0.001"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["totals"]["autoscale"] == [1, 4]
        assert report["totals"]["finished"] == 2
