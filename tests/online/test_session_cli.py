"""`repro online run/resume` and the session layer behind them."""

import json

import pytest

from repro.cli import main
from repro.errors import InvalidInstanceError
from repro.online.session import SESSION_POLICIES, start_session


class TestSessionLayer:
    @pytest.mark.parametrize("policy", SESSION_POLICIES)
    def test_every_policy_runs_every_family_smoke(self, policy):
        for family in ("additive", "coverage"):
            session = start_session(policy=policy, family=family, n=12, k=2,
                                    seed=3).advance()
            summary = session.summary()
            assert summary["finished"] is True
            assert summary["n_chosen"] == len(summary["selected"])
            assert summary["oracle_calls"] >= 0

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidInstanceError, match="family"):
            start_session(family="nope", n=10, k=2)

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidInstanceError, match="policy"):
            start_session(policy="nope", n=10, k=2)

    def test_summary_before_finish_has_no_result(self):
        session = start_session(n=20, k=3, seed=1).advance(4)
        summary = session.summary()
        assert summary["finished"] is False
        assert "selected" not in summary


class TestOnlineCLI:
    def test_run_to_completion(self, capsys):
        assert main(["online", "run", "--n", "20", "--k", "3", "--seed", "7"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finished"] is True
        assert payload["process"] == "uniform"
        assert "checkpoint" not in payload

    def test_suspend_resume_round_trip(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.json")
        assert main([
            "online", "run", "--policy", "monotone", "--family", "coverage",
            "--n", "30", "--k", "3", "--seed", "5", "--process", "bursty",
            "--max-arrivals", "11", "--checkpoint", ck,
        ]) == 0
        suspended = json.loads(capsys.readouterr().out)
        assert suspended["finished"] is False
        assert suspended["cursor"] == 11
        assert suspended["checkpoint"] == ck

        assert main(["online", "resume", ck]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["finished"] is True
        assert resumed["cursor"] == 30

        # The resumed hires equal the uninterrupted run's.
        assert main([
            "online", "run", "--policy", "monotone", "--family", "coverage",
            "--n", "30", "--k", "3", "--seed", "5", "--process", "bursty",
        ]) == 0
        oneshot = json.loads(capsys.readouterr().out)
        assert resumed["selected"] == oneshot["selected"]
        assert resumed["value"] == oneshot["value"]

    def test_resume_overwrites_input_by_default(self, tmp_path, capsys):
        ck = str(tmp_path / "hop.json")
        assert main([
            "online", "run", "--n", "25", "--k", "2", "--seed", "2",
            "--max-arrivals", "5", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        assert main(["online", "resume", ck, "--max-arrivals", "5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        if not payload["finished"]:
            assert payload["checkpoint"] == ck
            with open(ck, "r", encoding="utf-8") as fh:
                assert json.load(fh)["cursor"] == payload["cursor"]

    def test_process_params_forwarded(self, capsys):
        assert main([
            "online", "run", "--n", "15", "--k", "2", "--seed", "4",
            "--process", "bursty", "--process-params", '{"mean_batch": 9.0}',
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finished"] is True

    def test_unknown_process_is_clean_error(self, capsys):
        assert main(["online", "run", "--process", "warp"]) == 2
        err = capsys.readouterr().err
        assert "unknown arrival process" in err

    def test_malformed_process_params_is_clean_error(self, capsys):
        assert main(["online", "run", "--process-params", "{"]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        assert main(["online", "run", "--process-params", "[1, 2]"]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_unknown_process_param_is_clean_error(self, capsys):
        assert main([
            "online", "run", "--process", "bursty",
            "--process-params", '{"bogus": 1}',
        ]) == 2
        assert "bad parameters for arrival process" in capsys.readouterr().err

    def test_workload_knobs_forwarded(self, capsys):
        assert main([
            "online", "run", "--policy", "knapsack", "--n", "20", "--seed", "3",
            "--n-knapsacks", "4", "--distribution", "lognormal", "--aux", "0",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finished"] is True
