"""`repro online run/resume` and the session layer behind them."""

import json

import pytest

from repro.cli import main
from repro.errors import InvalidInstanceError
from repro.online.session import SESSION_POLICIES, start_session


class TestSessionLayer:
    @pytest.mark.parametrize("policy", SESSION_POLICIES)
    def test_every_policy_runs_every_family_smoke(self, policy):
        for family in ("additive", "coverage"):
            session = start_session(policy=policy, family=family, n=12, k=2,
                                    seed=3).advance()
            summary = session.summary()
            assert summary["finished"] is True
            assert summary["n_chosen"] == len(summary["selected"])
            assert summary["oracle_calls"] >= 0

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidInstanceError, match="family"):
            start_session(family="nope", n=10, k=2)

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidInstanceError, match="policy"):
            start_session(policy="nope", n=10, k=2)

    def test_summary_before_finish_has_no_result(self):
        session = start_session(n=20, k=3, seed=1).advance(4)
        summary = session.summary()
        assert summary["finished"] is False
        assert "selected" not in summary


class TestOnlineCLI:
    def test_run_to_completion(self, capsys):
        assert main(["online", "run", "--n", "20", "--k", "3", "--seed", "7"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finished"] is True
        assert payload["process"] == "uniform"
        assert "checkpoint" not in payload

    def test_suspend_resume_round_trip(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.json")
        assert main([
            "online", "run", "--policy", "monotone", "--family", "coverage",
            "--n", "30", "--k", "3", "--seed", "5", "--process", "bursty",
            "--max-arrivals", "11", "--checkpoint", ck,
        ]) == 0
        suspended = json.loads(capsys.readouterr().out)
        assert suspended["finished"] is False
        assert suspended["cursor"] == 11
        assert suspended["checkpoint"] == ck

        assert main(["online", "resume", ck]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["finished"] is True
        assert resumed["cursor"] == 30

        # The resumed hires equal the uninterrupted run's.
        assert main([
            "online", "run", "--policy", "monotone", "--family", "coverage",
            "--n", "30", "--k", "3", "--seed", "5", "--process", "bursty",
        ]) == 0
        oneshot = json.loads(capsys.readouterr().out)
        assert resumed["selected"] == oneshot["selected"]
        assert resumed["value"] == oneshot["value"]

    def test_resume_overwrites_input_by_default(self, tmp_path, capsys):
        ck = str(tmp_path / "hop.json")
        assert main([
            "online", "run", "--n", "25", "--k", "2", "--seed", "2",
            "--max-arrivals", "5", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        assert main(["online", "resume", ck, "--max-arrivals", "5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        if not payload["finished"]:
            assert payload["checkpoint"] == ck
            with open(ck, "r", encoding="utf-8") as fh:
                assert json.load(fh)["cursor"] == payload["cursor"]

    def test_process_params_forwarded(self, capsys):
        assert main([
            "online", "run", "--n", "15", "--k", "2", "--seed", "4",
            "--process", "bursty", "--process-params", '{"mean_batch": 9.0}',
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finished"] is True

    def test_unknown_process_is_clean_error(self, capsys):
        assert main(["online", "run", "--process", "warp"]) == 2
        err = capsys.readouterr().err
        assert "unknown arrival process" in err

    def test_malformed_process_params_is_clean_error(self, capsys):
        assert main(["online", "run", "--process-params", "{"]) == 2
        assert "not valid JSON" in capsys.readouterr().err
        assert main(["online", "run", "--process-params", "[1, 2]"]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_unknown_process_param_is_clean_error(self, capsys):
        assert main([
            "online", "run", "--process", "bursty",
            "--process-params", '{"bogus": 1}',
        ]) == 2
        assert "bad parameters for arrival process" in capsys.readouterr().err

    def test_workload_knobs_forwarded(self, capsys):
        assert main([
            "online", "run", "--policy", "knapsack", "--n", "20", "--seed", "3",
            "--n-knapsacks", "4", "--distribution", "lognormal", "--aux", "0",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["finished"] is True


class TestShardedCLI:
    def test_sharded_suspend_resume_round_trip(self, tmp_path, capsys):
        ck = str(tmp_path / "shards.json")
        base = ["online", "run", "--policy", "monotone", "--family", "coverage",
                "--n", "30", "--k", "3", "--seed", "5", "--process", "bursty",
                "--shards", "3"]
        assert main(base + ["--max-arrivals", "11", "--checkpoint", ck]) == 0
        suspended = json.loads(capsys.readouterr().out)
        assert suspended["finished"] is False
        assert suspended["shards"] == 3
        assert suspended["cursor"] == 11
        assert sum(suspended["cursors"]) == 11

        assert main(["online", "resume", ck]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["finished"] is True
        assert resumed["n_chosen"] <= 3
        assert resumed["strategy"] == "sharded-merge"

        # Same hires as the uninterrupted sharded run.
        assert main(base) == 0
        oneshot = json.loads(capsys.readouterr().out)
        assert resumed["selected"] == oneshot["selected"]
        assert resumed["value"] == oneshot["value"]

    def test_checkpoint_write_is_atomic(self, tmp_path, capsys):
        """A suspend over an existing checkpoint replaces it whole."""
        ck = tmp_path / "hop.json"
        ck.write_text('{"sentinel": true}')
        assert main([
            "online", "run", "--n", "25", "--k", "2", "--seed", "2",
            "--max-arrivals", "5", "--checkpoint", str(ck),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(ck.read_text())
        assert payload["cursor"] == 5  # fully replaced, never merged/truncated
        assert not list(tmp_path.glob("*.tmp"))

    def test_corrupt_checkpoint_is_clean_exit_2(self, tmp_path, capsys):
        ck = tmp_path / "truncated.json"
        ck.write_text('{"format": "repro-online-checkpoint/1", "cursor')
        assert main(["online", "resume", str(ck)]) == 2
        err = capsys.readouterr().err
        assert "corrupt or truncated" in err
        assert str(ck) in err

    def test_non_object_checkpoint_is_clean_exit_2(self, tmp_path, capsys):
        ck = tmp_path / "list.json"
        ck.write_text("[1, 2, 3]")
        assert main(["online", "resume", str(ck)]) == 2
        assert "not a JSON object" in capsys.readouterr().err

    def test_future_schema_version_is_clean_exit_2(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.json")
        assert main([
            "online", "run", "--n", "20", "--k", "2", "--seed", "1",
            "--max-arrivals", "6", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        with open(ck, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["schema_version"] = 99
        with open(ck, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        assert main(["online", "resume", ck]) == 2
        assert "schema version 99" in capsys.readouterr().err

    def test_inspect_plain_checkpoint(self, tmp_path, capsys):
        ck = str(tmp_path / "ck.json")
        assert main([
            "online", "run", "--policy", "monotone", "--family", "coverage",
            "--n", "30", "--k", "3", "--seed", "5", "--process", "bursty",
            "--max-arrivals", "11", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        assert main(["online", "inspect", ck]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format"] == "repro-online-checkpoint/1"
        assert info["schema_version"] == 2
        assert info["process"] == "bursty"
        assert info["cursor"] == 11
        assert isinstance(info["hired"], int)
        assert info["recipe"]["family"] == "coverage"
        assert info["embedded_schedule"] is False  # O(selected) payload
        # Inspect is read-only: the file still resumes afterwards.
        assert main(["online", "resume", ck]) == 0
        capsys.readouterr()

    def test_inspect_sharded_manifest(self, tmp_path, capsys):
        ck = str(tmp_path / "shards.json")
        assert main([
            "online", "run", "--n", "30", "--k", "3", "--seed", "5",
            "--shards", "3", "--max-arrivals", "11", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        assert main(["online", "inspect", ck]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format"] == "repro-online-sharded-checkpoint/1"
        assert info["num_shards"] == 3
        assert len(info["shards"]) == 3
        assert info["cursor"] == 11
        for shard in info["shards"]:
            assert shard["schema_version"] == 2
            assert shard["shard"]["num_shards"] == 3

    def test_inspect_corrupt_checkpoint_is_clean_exit_2(self, tmp_path, capsys):
        ck = tmp_path / "truncated.json"
        ck.write_text('{"format": "repro-online-checkpoint/1", "cursor')
        assert main(["online", "inspect", str(ck)]) == 2
        err = capsys.readouterr().err
        assert "corrupt or truncated" in err
        assert str(ck) in err

    def test_inspect_unknown_format_is_clean_exit_2(self, tmp_path, capsys):
        ck = tmp_path / "other.json"
        ck.write_text('{"format": "something-else"}')
        assert main(["online", "inspect", str(ck)]) == 2
        assert "unknown format" in capsys.readouterr().err

    def test_bad_shard_and_worker_flags_rejected(self, capsys):
        assert main(["online", "run", "--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err
        assert main(["online", "run", "--n", "10", "--workers", "2"]) == 2
        assert "sharded runs only" in capsys.readouterr().err
        assert main([
            "online", "run", "--n", "10", "--shards", "2", "--workers", "2",
            "--max-arrivals", "3",
        ]) == 2
        assert "--max-arrivals" in capsys.readouterr().err
