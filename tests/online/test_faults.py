"""Deterministic fault injection: plans, schedules, and billing safety.

The contract under test: a :class:`FaultPlan` is a pure function from
``(seed, site, scope, hit)`` to faults — the same plan fires the same
faults on every run; backoff delays are stateless (same seed/scope/
attempt, same delay, even across a resume hop); and a fault raised at
an oracle site aborts the query *before* the counting layer bills it.
"""

import json

import pytest

from repro.core.oracle import CountingOracle
from repro.errors import InvalidInstanceError
from repro.online.faults import (
    FAULT_PLAN_FORMAT,
    KILL_EXIT_CODE,
    KILL_SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PermanentFault,
    RetryPolicy,
    TransientFault,
    clear_injector,
    current_injector,
    fault_hit,
    install_injector,
    load_fault_plan,
)
from repro.online.session import build_workload


@pytest.fixture(autouse=True)
def _no_global_injector():
    """Every test starts and ends with the global injector cleared."""
    clear_injector()
    yield
    clear_injector()


class TestFaultRuleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown fault kind"):
            FaultRule("serve.feed", "explode", at=[1])

    def test_exactly_one_of_at_or_rate(self):
        with pytest.raises(InvalidInstanceError, match="exactly one"):
            FaultRule("serve.feed", "transient")
        with pytest.raises(InvalidInstanceError, match="exactly one"):
            FaultRule("serve.feed", "transient", at=[1], rate=0.5)

    def test_at_indices_are_one_based(self):
        with pytest.raises(InvalidInstanceError, match="1-based"):
            FaultRule("serve.feed", "transient", at=[0])

    def test_rate_bounds(self):
        with pytest.raises(InvalidInstanceError, match="rate"):
            FaultRule("serve.feed", "transient", rate=1.5)

    def test_latency_needs_delay(self):
        with pytest.raises(InvalidInstanceError, match="delay"):
            FaultRule("serve.feed", "latency", at=[1])

    def test_payload_round_trip(self):
        rule = FaultRule("checkpoint.*", "kill", scope="t-1", at=[2, 5])
        back = FaultRule.from_payload(rule.payload())
        assert back.payload() == rule.payload()

    def test_unknown_payload_keys_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown fields"):
            FaultRule.from_payload(
                {"site": "serve.feed", "kind": "transient", "at": [1],
                 "when": "now"}
            )

    def test_fnmatch_on_site_and_scope(self):
        rule = FaultRule("checkpoint.*", "transient", scope="t-*", at=[1])
        assert rule.matches("checkpoint.before_write", "t-3")
        assert not rule.matches("serve.feed", "t-3")
        assert not rule.matches("checkpoint.before_write", "other")


class TestRetryPolicy:
    def test_delay_is_a_pure_function(self):
        # Stateless schedule: same (seed, scope, attempt) => same delay,
        # on a fresh policy object — which is exactly why the schedule
        # survives a checkpoint/resume hop unchanged.
        a = RetryPolicy().delay(7, "tenant-a", 2)
        b = RetryPolicy().delay(7, "tenant-a", 2)
        assert a == b
        assert RetryPolicy().delay(7, "tenant-b", 2) != a

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.04, jitter=0.0)
        delays = [policy.delay(0, "t", a) for a in range(1, 6)]
        assert delays == [0.01, 0.02, 0.04, 0.04, 0.04]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=1.0, jitter=0.5)
        for attempt in range(1, 8):
            d = policy.delay(3, "t", attempt)
            base = min(1.0, 0.01 * 2 ** (attempt - 1))
            assert base <= d <= base * 1.5

    def test_attempt_is_one_based(self):
        with pytest.raises(InvalidInstanceError, match="1-based"):
            RetryPolicy().delay(0, "t", 0)

    def test_payload_round_trip(self):
        policy = RetryPolicy(max_attempts=9, base_delay=0.5, max_delay=2.0,
                             jitter=0.0, max_strikes=5)
        back = RetryPolicy.from_payload(policy.payload())
        assert back.payload() == policy.payload()

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidInstanceError):
            RetryPolicy(max_strikes=0)
        with pytest.raises(InvalidInstanceError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(InvalidInstanceError, match="unknown fields"):
            RetryPolicy.from_payload({"max_tries": 3})


class TestFaultPlan:
    def test_payload_round_trip(self):
        plan = FaultPlan(seed=42, rules=(
            FaultRule("serve.feed", "transient", scope="a", at=[1]),
            FaultRule("oracle.*", "latency", rate=0.25, delay=0.01),
        ))
        back = FaultPlan.from_payload(plan.payload())
        assert back.payload() == plan.payload()
        assert back.payload()["format"] == FAULT_PLAN_FORMAT

    def test_format_checked(self):
        with pytest.raises(InvalidInstanceError, match="repro-fault-plan"):
            FaultPlan.from_payload({"format": "something/9"})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(FaultPlan(seed=5).payload()))
        assert load_fault_plan(str(path)).seed == 5

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(InvalidInstanceError, match="not valid JSON"):
            load_fault_plan(str(path))


class TestFaultInjector:
    def test_at_rule_fires_on_exact_hits_per_scope(self):
        plan = FaultPlan(rules=(
            FaultRule("serve.feed", "transient", scope="a", at=[2]),
        ))
        inj = FaultInjector(plan)
        assert inj.hit("serve.feed", "a") == 0.0  # hit 1: no fire
        with pytest.raises(TransientFault):
            inj.hit("serve.feed", "a")  # hit 2 fires
        # Scope "b" has its own counter: its hit 2 does not exist yet.
        assert inj.hit("serve.feed", "b") == 0.0
        assert inj.hits("serve.feed", "a") == 2
        assert inj.hits("serve.feed", "b") == 1

    def test_rate_rule_is_seed_deterministic(self):
        plan = FaultPlan(seed=99, rules=(
            FaultRule("oracle.value", "transient", rate=0.3),
        ))

        def fire_pattern():
            inj = FaultInjector(plan)
            pattern = []
            for _ in range(50):
                try:
                    inj.hit("oracle.value", "t")
                    pattern.append(False)
                except TransientFault:
                    pattern.append(True)
            return pattern, inj.fired

        (p1, f1), (p2, f2) = fire_pattern(), fire_pattern()
        assert p1 == p2
        assert f1 == f2
        assert any(p1) and not all(p1)  # rate 0.3 fires some, not all

    def test_different_seeds_differ(self):
        def pattern(seed):
            inj = FaultInjector(FaultPlan(seed=seed, rules=(
                FaultRule("s", "transient", rate=0.5),
            )))
            out = []
            for _ in range(30):
                try:
                    inj.hit("s")
                    out.append(False)
                except TransientFault:
                    out.append(True)
            return out

        assert pattern(1) != pattern(2)

    def test_latency_accumulates_and_returns(self):
        plan = FaultPlan(rules=(
            FaultRule("site", "latency", at=[1], delay=0.25),
            FaultRule("site", "latency", at=[1, 2], delay=0.5),
        ))
        inj = FaultInjector(plan)
        assert inj.hit("site") == pytest.approx(0.75)
        assert inj.hit("site") == pytest.approx(0.5)
        assert inj.hit("site") == 0.0

    def test_kill_calls_kill_fn_with_exit_code(self):
        plan = FaultPlan(rules=(FaultRule("checkpoint.mid_write", "kill",
                                          at=[1]),))
        inj = FaultInjector(plan)
        killed = []
        inj.kill_fn = killed.append
        inj.hit("checkpoint.mid_write", "t")
        assert killed == [KILL_EXIT_CODE]

    def test_permanent_fault_raises_permanent(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("serve.feed", "permanent", at=[1]),
        )))
        with pytest.raises(PermanentFault):
            inj.hit("serve.feed", "t")

    def test_stats_shape(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("a", "latency", at=[1], delay=0.1),
        )))
        inj.hit("a")
        stats = inj.stats()
        assert stats["fired"] == 1
        assert stats["by_site"] == {"a": 1}
        assert stats["by_kind"] == {"latency": 1}

    def test_kill_sites_registry(self):
        assert "checkpoint.mid_write" in KILL_SITES
        assert "report.write" in KILL_SITES


def _counting_oracle(n=12, seed=3):
    fn, _ = build_workload({"family": "additive", "n": n, "seed": seed})
    return fn, CountingOracle(fn)


class TestFaultyOracleBilling:
    def test_value_fault_fires_before_billing(self):
        fn, counting = _counting_oracle()
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("oracle.value", "transient", at=[1]),
        )))
        faulty = inj.wrap_oracle(counting, "t")
        subset = frozenset(list(fn.ground_set)[:2])
        with pytest.raises(TransientFault):
            faulty.value(subset)
        assert counting.calls == 0  # aborted query never billed
        assert faulty.value(subset) == fn.value(subset)
        assert counting.calls == 1

    def test_batch_fault_fires_before_billing(self):
        fn, counting = _counting_oracle()
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("oracle.batch", "transient", at=[1]),
        )))
        faulty = inj.wrap_oracle(counting, "t")
        ev = faulty.fast_evaluator()
        assert ev is not None
        billed_at_setup = counting.calls  # evaluator construction bills
        candidates = list(fn.ground_set)[:4]
        with pytest.raises(TransientFault):
            ev.gains(candidates)
        assert counting.calls == billed_at_setup
        ev.gains(candidates)  # hit 2: no rule, bills normally
        assert counting.calls > billed_at_setup

    def test_ground_set_passthrough(self):
        fn, counting = _counting_oracle()
        inj = FaultInjector(FaultPlan())
        assert inj.wrap_oracle(counting, "t").ground_set == fn.ground_set


class TestGlobalInjector:
    def test_fault_hit_is_noop_without_injector(self):
        assert current_injector() is None
        assert fault_hit("checkpoint.before_write", "t") == 0.0

    def test_install_returns_previous_for_nesting(self):
        first = FaultInjector(FaultPlan())
        second = FaultInjector(FaultPlan())
        assert install_injector(first) is None
        assert install_injector(second) is first
        assert current_injector() is second
        install_injector(first)
        assert current_injector() is first
        clear_injector()
        assert current_injector() is None

    def test_fault_hit_routes_to_installed_injector(self):
        inj = FaultInjector(FaultPlan(rules=(
            FaultRule("checkpoint.after_write", "transient", at=[1]),
        )))
        install_injector(inj)
        with pytest.raises(TransientFault):
            fault_hit("checkpoint.after_write", "t")
        assert inj.hits("checkpoint.after_write", "t") == 1
