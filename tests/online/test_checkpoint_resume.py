"""Checkpoint/resume: suspend anywhere, resume exactly.

The satellite property the PR promises: for **each policy × each
arrival process**, suspending at *every* arrival position, JSON
round-tripping the checkpoint, and resuming in a fresh session
reproduces the uninterrupted run's hired set exactly.  The matroid
policy (not a session policy — its matroids are a runtime dependency)
gets the same sweep through the lower-level :func:`resume_run` with
re-injected deps.
"""

import json

import numpy as np
import pytest

from repro.core.oracle import CountingOracle
from repro.matroids.uniform import UniformMatroid
from repro.online.arrivals import arrival_process_names, build_arrival_schedule
from repro.online.checkpoint import make_checkpoint, resume_run
from repro.online.driver import OnlineRun
from repro.online.policies import MatroidSecretaryPolicy
from repro.online.session import (
    SESSION_POLICIES,
    resume_session,
    start_session,
)
from repro.workloads.secretary_streams import coverage_utility

from tests.online.procutil import process_params

ALL_PROCESSES = arrival_process_names()
N, K, SEED = 14, 3, 20100612


def _roundtrip(payload):
    return json.loads(json.dumps(payload, sort_keys=True))


def _session_process_params(process, family="additive", n=N, seed=SEED):
    """Per-process ``process_params`` for a session over this workload."""
    from repro.online.session import build_workload

    if process != "replay":
        return {}
    fn, _ = build_workload({"family": family, "n": n, "seed": seed})
    return process_params(process, fn)


@pytest.mark.parametrize("process", ALL_PROCESSES)
@pytest.mark.parametrize("policy", SESSION_POLICIES)
def test_suspend_everywhere_resume_exact(policy, process):
    """Every cut point of every policy × process reproduces the full run."""
    kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                  process=process,
                  process_params=_session_process_params(process))
    full = start_session(**kwargs).advance()
    assert full.finished
    want = full.run.result().selected

    for cut in range(N + 1):
        session = start_session(**kwargs).advance(cut)
        if not session.finished:
            assert session.run.cursor == cut
        resumed = resume_session(_roundtrip(session.checkpoint())).advance()
        assert resumed.finished
        got = resumed.run.result().selected
        assert got == want, (policy, process, cut)


@pytest.mark.parametrize("process", ALL_PROCESSES)
@pytest.mark.parametrize("k_guess", [1, 4])
def test_matroid_policy_resume_with_deps(process, k_guess):
    """Matroid deps re-inject through resume_run's ``deps`` hook."""
    fn = coverage_utility(N, 6, rng=np.random.default_rng(1))
    matroids = [UniformMatroid(fn.ground_set, 3)]
    schedule = build_arrival_schedule(
        process, fn, 5, **process_params(process, fn)
    )

    def fresh_run():
        return OnlineRun(
            CountingOracle(fn), schedule, MatroidSecretaryPolicy(matroids, k_guess)
        )

    want = fresh_run().run().result().selected
    for cut in range(N + 1):
        run = fresh_run().run(cut)
        ck = _roundtrip(make_checkpoint(run))
        resumed = resume_run(ck, CountingOracle(fn), deps={"matroids": matroids})
        got = resumed.run().result().selected
        assert got == want, (process, k_guess, cut)


@pytest.mark.parametrize("policy_name", ["robust", "bottleneck", "knapsack"])
def test_int_element_streams_survive_json(policy_name):
    """Value/weight-keyed configs keep int element identity through JSON.

    JSON object keys are strings, so these policies encode their
    element-keyed maps as pair lists — a dict-keyed encoding came back
    with "0" while the schedule's order kept 0 (KeyError on resume).
    """
    from repro.core.functions import AdditiveFunction
    from repro.online.policies import (
        BottleneckPolicy,
        KnapsackSecretaryPolicy,
        RobustTopKPolicy,
    )

    values = {i: float(1 + (7 * i) % 11) for i in range(10)}
    fn = AdditiveFunction(values)
    schedule = build_arrival_schedule("uniform", fn, 3)

    def policy():
        if policy_name == "robust":
            return RobustTopKPolicy(values, 3)
        if policy_name == "bottleneck":
            return BottleneckPolicy(values, 2)
        return KnapsackSecretaryPolicy(
            {e: 0.4 for e in values}, heads=False
        )

    want = OnlineRun(CountingOracle(fn), schedule, policy()).run().result().selected
    run = OnlineRun(CountingOracle(fn), schedule, policy()).run(4)
    ck = _roundtrip(make_checkpoint(run))
    resumed = resume_run(ck, CountingOracle(fn))
    got = resumed.run().result().selected
    assert got == want


def test_checkpoint_is_json_strict():
    """-inf thresholds and traces survive strict JSON (no NaN/Infinity)."""
    session = start_session(policy="monotone", family="coverage", n=20, k=3,
                            seed=3, process="bursty").advance(7)
    text = json.dumps(session.checkpoint(), sort_keys=True, allow_nan=False)
    resumed = resume_session(json.loads(text)).advance()
    assert resumed.finished


def test_checkpoint_records_instance_recipe():
    session = start_session(policy="robust", family="additive", n=12, k=2, seed=9)
    ck = session.advance(4).checkpoint()
    assert ck["format"] == "repro-online-checkpoint/1"
    assert ck["instance"]["policy"] == "robust"
    assert ck["instance"]["seed"] == 9
    assert ck["cursor"] == 4


def test_resume_without_recipe_rejected():
    from repro.errors import InvalidInstanceError

    session = start_session(n=10, k=2, seed=1).advance(3)
    ck = session.checkpoint()
    del ck["instance"]
    with pytest.raises(InvalidInstanceError, match="workload recipe"):
        resume_session(ck)


def test_resume_rejects_wrong_format():
    from repro.errors import InvalidInstanceError

    fn = coverage_utility(8, 4, rng=np.random.default_rng(1))
    with pytest.raises(InvalidInstanceError, match="checkpoint"):
        resume_run({"format": "bogus"}, fn)


def test_resume_rejects_bad_cursor():
    from repro.errors import InvalidInstanceError

    session = start_session(n=10, k=2, seed=1).advance(3)
    ck = _roundtrip(session.checkpoint())
    ck["cursor"] = 99
    with pytest.raises(InvalidInstanceError, match="cursor"):
        resume_session(ck)


def test_oracle_frontier_restored_no_peeking():
    """A resumed run re-reveals only the frontier, and still no peeking.

    The v2 O(selected) contract: resume reveals the checkpointed
    frontier (the hired set plus whatever the policy may still query) —
    a subset of the consumed prefix, not the whole prefix — and the
    arrival oracle keeps refusing anything that never arrived.
    """
    from repro.errors import OracleError

    session = start_session(policy="monotone", family="coverage", n=16, k=3,
                            seed=2).advance(5)
    resumed = resume_session(_roundtrip(session.checkpoint()))
    order = resumed.run.schedule.order
    frontier = frozenset(resumed.run.policy.frontier())
    assert resumed.run.oracle.arrived == frontier
    assert frontier <= frozenset(order[:5])
    with pytest.raises(OracleError, match="not arrived"):
        resumed.run.oracle.value(frozenset({order[10]}))


def test_oracle_calls_accumulate_across_resume():
    """A resumed session reports cumulative calls, not post-resume only.

    The classical policy issues exactly one counted query per observed
    arrival and restores no evaluator state, so suspend/resume must
    report the same total as the uninterrupted run.
    """
    kwargs = dict(policy="classical", family="additive", n=20, k=1, seed=4)
    oneshot = start_session(**kwargs).advance()
    want = oneshot.summary()["oracle_calls"]
    assert want > 0

    hop1 = start_session(**kwargs).advance(7)
    hop2 = resume_session(_roundtrip(hop1.checkpoint())).advance(6)
    hop3 = resume_session(_roundtrip(hop2.checkpoint())).advance()
    assert hop3.summary()["oracle_calls"] == want
    assert hop3.run.result().selected == oneshot.run.result().selected


@pytest.mark.parametrize("policy", SESSION_POLICIES)
def test_oracle_calls_exact_across_resume_every_policy(policy):
    """Resume must not inflate call counts, for any policy.

    Policies that restore evaluator state bill re-derivation queries in
    ``load_state``; the session layer nets that restore overhead out of
    the prior-calls carry, so the cumulative total equals the
    uninterrupted run's *exactly* — restores are an accounting no-op,
    not billable oracle work.
    """
    kwargs = dict(policy=policy, family="additive", n=20, k=3, seed=4)
    want = start_session(**kwargs).advance().summary()["oracle_calls"]

    hop1 = start_session(**kwargs).advance(7)
    hop2 = resume_session(_roundtrip(hop1.checkpoint())).advance(6)
    hop3 = resume_session(_roundtrip(hop2.checkpoint())).advance()
    assert hop3.summary()["oracle_calls"] == want


def test_oracle_calls_exact_across_sharded_resume():
    """The same exact-total contract over the sharded runtime.

    Every shard's resume bills its own restore overhead; the sharded
    session nets the sum, so a suspend/resume hop leaves the merged
    call count identical to an uninterrupted sharded run's.
    """
    from repro.online.session import resume_sharded_session, start_sharded_session

    kwargs = dict(policy="monotone", family="additive", n=24, k=3, seed=9,
                  shards=2)
    want = start_sharded_session(**kwargs).advance().summary()["oracle_calls"]

    suspended = start_sharded_session(**kwargs)
    suspended.advance_shard(0, 5)
    suspended.advance_shard(1, 4)
    resumed = resume_sharded_session(
        _roundtrip(suspended.checkpoint())).advance()
    assert resumed.summary()["oracle_calls"] == want


def test_double_resume_chain():
    """Checkpoint → resume → checkpoint → resume equals one shot."""
    kwargs = dict(policy="knapsack", family="additive", n=18, k=3, seed=6,
                  process="poisson")
    want = start_session(**kwargs).advance().run.result().selected
    hop1 = start_session(**kwargs).advance(5)
    hop2 = resume_session(_roundtrip(hop1.checkpoint())).advance(6)
    hop3 = resume_session(_roundtrip(hop2.checkpoint())).advance()
    assert hop3.finished
    assert hop3.run.result().selected == want


@pytest.mark.parametrize("process,params", [
    ("bursty", {"mean_batch": 6.0}),
    ("poisson", {"rate": 6.0}),
])
def test_truncated_batch_resumes_from_in_batch_cursor(process, params):
    """``run(max_arrivals)`` cutting a minibatch suspends *inside* it.

    The cursor must land mid-batch (not snap to a batch boundary), the
    checkpoint must round-trip that cursor, and the resumed run must
    replay only the batch's unconsumed tail — same hires as the
    uninterrupted run for every in-batch cut point.
    """
    kwargs = dict(policy="monotone", family="additive", n=24, k=3, seed=9,
                  process=process, process_params=params)
    full = start_session(**kwargs).advance()
    want = full.run.result().selected
    # Every position strictly inside a multi-arrival batch.
    sizes = full.run.schedule.batch_sizes
    in_batch_cuts, pos = [], 0
    for size in sizes:
        in_batch_cuts.extend(range(pos + 1, pos + size))
        pos += size
    assert in_batch_cuts, f"{process} drew no multi-arrival batch"
    for cut in in_batch_cuts:
        session = start_session(**kwargs).advance(cut)
        if session.finished:
            continue  # policy went done before the cut
        assert session.run.cursor == cut
        resumed = resume_session(_roundtrip(session.checkpoint()))
        assert resumed.run.cursor == cut
        assert resumed.advance().run.result().selected == want, (process, cut)
