"""The sharded online runtime: partition, merge, checkpoints, sessions.

The PR's pinned contract: ``ShardedRun`` at S=1 reproduces the
unsharded ``OnlineRun`` hires *and* oracle-call counts bit-identically,
and at S>1 the merged hires always satisfy the task's feasibility
constraint.  Plus: the hash partition is stable and structure-
preserving, manifests resume with any subset of shards mid-stream, and
the spawn-pool parallel path equals the inline one.
"""

import json

import numpy as np
import pytest

from repro.core.functions import AdditiveFunction, CutFunction
from repro.core.oracle import CountingOracle
from repro.errors import InvalidInstanceError
from repro.online.arrivals import arrival_process_names, build_arrival_schedule
from repro.online.sharding import (
    ShardedRun,
    ShardView,
    knapsack_constraint,
    make_sharded_checkpoint,
    merge_hires,
    resume_sharded_run,
    shard_of,
    shard_schedule,
)
from repro.online.session import (
    SESSION_POLICIES,
    resume_any_session,
    resume_sharded_session,
    start_session,
    start_sharded_session,
)
from repro.workloads.secretary_streams import coverage_utility

from tests.online.procutil import process_params

ALL_PROCESSES = arrival_process_names()
N, K, SEED = 18, 3, 20100612


def _session_process_params(process, family="additive", n=N, seed=SEED):
    if process != "replay":
        return {}
    from repro.online.session import build_workload

    fn, _ = build_workload({"family": family, "n": n, "seed": seed})
    return process_params(process, fn)


def _roundtrip(payload):
    return json.loads(json.dumps(payload, sort_keys=True, allow_nan=False))


class TestShardPartition:
    def test_assignment_is_stable_and_in_range(self):
        for element in ("s0", "s11", 7, "x"):
            idx = shard_of(element, 4)
            assert 0 <= idx < 4
            assert shard_of(element, 4) == idx  # pure function
        assert shard_of("s0", 4, salt=1) in range(4)

    def test_single_shard_is_the_identity(self):
        fn = coverage_utility(N, 6, rng=np.random.default_rng(1))
        schedule = build_arrival_schedule("bursty", fn, 3)
        (only,) = shard_schedule(schedule, 1)
        assert only is schedule

    @pytest.mark.parametrize("process", ["uniform", "bursty", "poisson"])
    @pytest.mark.parametrize("num_shards", [2, 3, 5])
    def test_partition_preserves_order_batches_timestamps(
        self, process, num_shards
    ):
        fn = coverage_utility(N, 6, rng=np.random.default_rng(1))
        schedule = build_arrival_schedule(process, fn, 3)
        shards = shard_schedule(schedule, num_shards)
        assert len(shards) == num_shards
        # Every element lands on exactly its hash shard, orders are
        # subsequences, and the union covers the stream.
        seen = []
        for s, shard in enumerate(shards):
            assert all(shard_of(e, num_shards) == s for e in shard.order)
            pos = [schedule.order.index(e) for e in shard.order]
            assert pos == sorted(pos)  # relative order preserved
            if schedule.timestamps is not None:
                assert shard.timestamps == [
                    schedule.timestamps[i] for i in pos
                ]
            seen.extend(shard.order)
        assert sorted(seen, key=repr) == sorted(schedule.order, key=repr)
        # Batch structure: a shard batch never straddles a global batch
        # boundary (revealed-together stays revealed-together).
        bounds = []
        pos = 0
        for size in schedule.batch_sizes:
            bounds.append((pos, pos + size))
            pos += size

        def global_batch(i):
            return next(j for j, (lo, hi) in enumerate(bounds) if lo <= i < hi)

        for shard in shards:
            cursor = 0
            for size in shard.batch_sizes:
                batch = shard.order[cursor:cursor + size]
                owners = {global_batch(schedule.order.index(e)) for e in batch}
                assert len(owners) == 1
                cursor += size

    def test_bad_shard_counts_rejected(self):
        fn = coverage_utility(8, 4, rng=np.random.default_rng(1))
        schedule = build_arrival_schedule("uniform", fn, 3)
        with pytest.raises(InvalidInstanceError, match="num_shards"):
            shard_schedule(schedule, 0)
        with pytest.raises(InvalidInstanceError, match="num_shards"):
            shard_of("s0", -1)

    def test_shard_view_restricts_ground_set_only(self):
        fn = coverage_utility(8, 4, rng=np.random.default_rng(1))
        elems = sorted(fn.ground_set, key=repr)[:3]
        view = ShardView(fn, elems)
        assert view.ground_set == frozenset(elems)
        subset = frozenset(elems[:2])
        assert view.value(subset) == fn.value(subset)
        with pytest.raises(InvalidInstanceError, match="outside"):
            ShardView(fn, ["nope"])


class TestMergeHires:
    def test_ranks_by_marginal_gain_with_limit(self):
        fn = AdditiveFunction({f"s{i}": float(i) for i in range(6)})
        merged = merge_hires(fn, [f"s{i}" for i in range(6)], limit=2)
        assert sorted(merged) == ["s4", "s5"]

    def test_can_take_respected(self):
        fn = AdditiveFunction({"a": 5.0, "b": 4.0, "c": 1.0})
        weights = {"a": 0.9, "b": 0.9, "c": 0.1}
        merged = merge_hires(
            fn, ["a", "b", "c"], can_take=knapsack_constraint(weights)
        )
        # "a" first (best gain), "b" no longer fits, "c" does.
        assert sorted(merged) == ["a", "c"]

    def test_stops_when_nothing_improves(self):
        # Cut utility: taking both endpoints of the only edge is worth 0.
        fn = CutFunction(["a", "b"], [("a", "b", 1.0)])
        merged = merge_hires(fn, ["a", "b"])
        assert len(merged) == 1  # second endpoint has negative gain

    def test_empty_candidates(self):
        fn = AdditiveFunction({"a": 1.0})
        assert merge_hires(fn, []) == []

    def test_deterministic_tie_break(self):
        fn = AdditiveFunction({"a": 1.0, "b": 1.0, "c": 1.0})
        assert merge_hires(fn, ["c", "b", "a"], limit=2) == ["a", "b"]


class TestBitIdentityAtOneShard:
    """The pinned S=1 contract: sharded == unsharded, bit for bit."""

    @pytest.mark.parametrize("process", ["uniform", "bursty", "poisson"])
    @pytest.mark.parametrize("policy", SESSION_POLICIES)
    def test_selected_and_oracle_calls_identical(self, policy, process):
        kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                      process=process)
        plain = start_session(**kwargs).advance()
        sharded = start_sharded_session(shards=1, **kwargs).advance()
        a, b = plain.summary(), sharded.summary()
        assert b["selected"] == a["selected"]
        assert b["value"] == a["value"]
        assert b["oracle_calls"] == a["oracle_calls"]
        assert sharded.run.merge_calls == 0  # no merge stage at S=1


class TestMergedFeasibility:
    """S>1 merged hires always satisfy the task's constraint."""

    @pytest.mark.parametrize("shards", [2, 3])
    @pytest.mark.parametrize("policy", SESSION_POLICIES)
    def test_cardinality_and_knapsack_feasible(self, policy, shards):
        session = start_sharded_session(
            policy=policy, family="additive", n=N, k=K, seed=SEED,
            process="bursty", shards=shards,
        ).advance()
        summary = session.summary()
        assert summary["finished"]
        if policy == "knapsack":
            from repro.online.session import build_workload

            _, weights = build_workload(session.recipe)
            load = sum(weights[e] for e in summary["selected"])
            assert load <= 1.0 + 1e-9
        elif policy == "classical":
            assert summary["n_chosen"] <= 1
        else:
            assert summary["n_chosen"] <= K

    def test_nonmonotone_merge_never_hurts_best_shard(self):
        session = start_sharded_session(
            policy="nonmonotone", family="cut", n=20, k=3, seed=2, shards=2,
        ).advance()
        merged_value = session.summary()["value"]
        best_shard = max(
            float(session.base.value(frozenset(r.selected)))
            for r in session.run.shard_results()
        )
        assert merged_value >= best_shard - 1e-9

    def test_empty_shards_are_fine(self):
        session = start_sharded_session(
            policy="monotone", family="additive", n=4, k=2, seed=1, shards=9,
        ).advance()
        summary = session.summary()
        assert summary["finished"]
        assert summary["n_chosen"] <= 2
        assert len(summary["cursors"]) == 9


class TestShardedCheckpointResume:
    @pytest.mark.parametrize("process", ALL_PROCESSES)
    @pytest.mark.parametrize("policy", ["monotone", "knapsack", "robust"])
    def test_suspend_everywhere_resume_exact(self, policy, process):
        kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                      process=process, shards=2,
                      process_params=_session_process_params(process))
        want = start_sharded_session(**kwargs).advance().summary()["selected"]
        for cut in range(0, N + 1, 3):
            session = start_sharded_session(**kwargs).advance(cut)
            resumed = resume_any_session(_roundtrip(session.checkpoint()))
            got = resumed.advance().summary()["selected"]
            assert got == want, (policy, process, cut)

    def test_subset_of_shards_mid_stream(self):
        """One shard drained, one mid-stream, one untouched — resumable."""
        kwargs = dict(policy="monotone", family="coverage", n=24, k=3,
                      seed=7, process="bursty", shards=3)
        want = start_sharded_session(**kwargs).advance().summary()["selected"]
        session = start_sharded_session(**kwargs)
        session.advance_shard(0)  # drain shard 0
        session.advance_shard(1, 2)  # leave shard 1 mid-stream
        assert not session.finished
        ck = _roundtrip(session.checkpoint())
        resumed = resume_sharded_session(ck)
        assert resumed.run.cursors == session.run.cursors
        assert resumed.advance().summary()["selected"] == want

    def test_oracle_calls_accumulate_across_hops(self):
        kwargs = dict(policy="robust", family="additive", n=20, k=3, seed=4,
                      shards=2)
        oneshot = start_sharded_session(**kwargs).advance()
        want = oneshot.summary()["oracle_calls"]
        hop1 = start_sharded_session(**kwargs).advance(7)
        hop2 = resume_sharded_session(_roundtrip(hop1.checkpoint())).advance(6)
        hop3 = resume_sharded_session(_roundtrip(hop2.checkpoint())).advance()
        # The robust policy restores no evaluator state, so the counts
        # must match exactly (like the unsharded accumulation test).
        assert hop3.summary()["oracle_calls"] == want
        assert hop3.summary()["selected"] == oneshot.summary()["selected"]

    def test_manifest_layout(self):
        session = start_sharded_session(
            policy="monotone", family="additive", n=12, k=2, seed=3, shards=2,
        ).advance(5)
        ck = session.checkpoint()
        assert ck["format"] == "repro-online-sharded-checkpoint/1"
        assert ck["schema_version"] == 2
        assert ck["num_shards"] == 2
        assert len(ck["shards"]) == 2
        for shard_ck in ck["shards"]:
            assert shard_ck["format"] == "repro-online-checkpoint/1"
            assert shard_ck["schema_version"] == 2
            assert "schedule" not in shard_ck  # O(selected), not O(n)
            assert "source" in shard_ck
        assert ck["instance"]["shards"] == 2

    def test_manifest_shard_count_mismatch_rejected(self):
        session = start_sharded_session(n=12, k=2, seed=3, shards=2).advance(4)
        ck = _roundtrip(session.checkpoint())
        ck["shards"] = ck["shards"][:1]
        with pytest.raises(InvalidInstanceError, match="declares 2"):
            resume_sharded_session(ck)

    def test_lower_level_resume_with_explicit_utility(self):
        fn = coverage_utility(N, 6, rng=np.random.default_rng(1))
        schedule = build_arrival_schedule("bursty", fn, 5)
        from repro.online.policies import SegmentedSubmodularPolicy

        def factory(index, shard):
            return SegmentedSubmodularPolicy(2)

        def fresh():
            return ShardedRun.from_schedule(
                fn, schedule, 2, factory,
                oracle_factory=lambda i, v: CountingOracle(v), limit=2,
            )

        want = fresh().run().result().selected
        run = fresh().run(7)
        ck = _roundtrip(make_sharded_checkpoint(run))
        resumed = resume_sharded_run(
            ck, fn, oracle_factory=lambda i, v: CountingOracle(v)
        )
        assert resumed.run().result().selected == want


class TestSchemaVersioning:
    def test_unknown_checkpoint_version_rejected(self):
        session = start_session(n=10, k=2, seed=1).advance(3)
        ck = _roundtrip(session.checkpoint())
        ck["schema_version"] = 99
        with pytest.raises(InvalidInstanceError, match="schema version 99"):
            resume_any_session(ck)

    def test_missing_version_means_version_one(self):
        """Pre-versioning (v1-layout) checkpoints with no marker resume.

        A version-less payload is read as schema v1 — embedded schedule,
        no source spec or decision log — through the migration shim.
        """
        session = start_session(n=10, k=2, seed=1).advance(3)
        run = session.run
        v1 = {
            "format": "repro-online-checkpoint/1",
            "cursor": run.cursor,
            "schedule": run.schedule.payload(),
            "policy": {
                "name": run.policy.name,
                "config": run.policy.config_dict(),
                "state": run.policy.state_dict(),
            },
            "instance": {
                k: v for k, v in session.recipe.items()
                if k != "recipe_version"
            },
        }
        assert resume_any_session(_roundtrip(v1)).advance().finished

    def test_unknown_recipe_version_rejected(self):
        session = start_session(n=10, k=2, seed=1).advance(3)
        ck = _roundtrip(session.checkpoint())
        ck["instance"]["recipe_version"] = 7
        with pytest.raises(InvalidInstanceError, match="recipe schema version 7"):
            resume_any_session(ck)

    def test_unknown_sharded_version_rejected(self):
        session = start_sharded_session(n=12, k=2, seed=1, shards=2).advance(4)
        ck = _roundtrip(session.checkpoint())
        ck["schema_version"] = 99
        with pytest.raises(InvalidInstanceError, match="schema version 99"):
            resume_any_session(ck)


class TestParallelShards:
    def test_parallel_equals_inline(self):
        kwargs = dict(policy="monotone", family="coverage", n=24, k=3,
                      seed=5, process="bursty", shards=3)
        inline = start_sharded_session(**kwargs).advance()
        par = start_sharded_session(**kwargs).advance(6)
        par.advance_parallel(2)
        assert par.finished
        assert par.summary()["selected"] == inline.summary()["selected"]

    def test_parallel_on_finished_session_is_noop(self):
        session = start_sharded_session(n=12, k=2, seed=1, shards=2).advance()
        assert session.advance_parallel(4).finished


class TestShardedAdapters:
    def test_split_family_parses_all_forms(self):
        from repro.engine.tasks.secretary import split_family

        assert split_family("coverage") == ("coverage", "uniform", 1, None)
        assert split_family("coverage@bursty") == (
            "coverage", "bursty", 1, None
        )
        assert split_family("coverage@bursty#4") == (
            "coverage", "bursty", 4, None
        )
        assert split_family("additive#3") == ("additive", "uniform", 3, None)
        assert split_family("additive#2>4") == ("additive", "uniform", 2, 4)
        assert split_family("coverage@bursty#4>2") == (
            "coverage", "bursty", 4, 2
        )
        with pytest.raises(InvalidInstanceError, match="shard qualifier"):
            split_family("coverage@bursty#0")
        with pytest.raises(InvalidInstanceError, match="shard qualifier"):
            split_family("coverage#x")
        with pytest.raises(InvalidInstanceError, match="reshard qualifier"):
            split_family("coverage#2>0")
        with pytest.raises(InvalidInstanceError, match="reshard qualifier"):
            split_family("coverage#2>x")

    def test_secretary_sharded_cell_runs_and_is_feasible(self):
        from repro.engine import SweepSpec, run_sweep

        result = run_sweep(SweepSpec(
            task="secretary", families=("coverage@bursty#2",),
            grid=((24, 3, 0),), methods=("monotone", "nonmonotone"), trials=2,
        ))
        for record in result.records:
            assert record.n_chosen <= 3
            assert record.utility >= 0.0

    def test_knapsack_sharded_cell_runs(self):
        from repro.engine import SweepSpec, run_sweep

        # The adapter itself raises InfeasibleError on a capacity
        # violation, so a clean sweep is the feasibility assertion.
        result = run_sweep(SweepSpec(
            task="knapsack_secretary", families=("additive@bursty#2",),
            grid=((24, 2, 0),), methods=("online",), trials=2,
        ))
        assert all(r.oracle_work > 0 for r in result.records)

    def test_sharded_family_has_distinct_fingerprint(self):
        from repro.engine.spec import RunSpec
        from repro.engine.tasks import get_task

        adapter = get_task("secretary")
        plain = RunSpec(task="secretary", family="coverage@bursty",
                        n_jobs=20, n_processors=3, horizon=0,
                        method="monotone", trial=0, seed=11)
        sharded = RunSpec(task="secretary", family="coverage@bursty#2",
                          n_jobs=20, n_processors=3, horizon=0,
                          method="monotone", trial=0, seed=11)
        fp_plain = adapter.fingerprint(adapter.build(plain))
        fp_sharded = adapter.fingerprint(adapter.build(sharded))
        assert fp_plain != fp_sharded

    def test_sweep_validation_rejects_bad_qualifiers(self):
        from repro.engine import SweepSpec, run_sweep

        with pytest.raises(InvalidInstanceError, match="unknown secretary"):
            run_sweep(SweepSpec(
                task="secretary", families=("coverage@warp#2",),
                grid=((10, 2, 0),), methods=("monotone",), trials=1,
            ))
