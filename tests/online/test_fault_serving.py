"""Tenant failure domains: faults cost retries, never correctness.

The contracts under test: injected transient faults leave every
tenant's hires, value, and oracle-call count bit-identical to an
unfaulted serve (rollback + retry re-bills each batch exactly once);
permanent faults quarantine exactly the struck tenant after
``max_strikes`` while the fleet keeps serving; a corrupt per-tenant
checkpoint quarantines that tenant on resume instead of aborting the
fleet; backoff schedules are seed-deterministic across runs and across
a drain/resume hop; and a ``memory_budget`` caps resident sessions
without moving any result.
"""

import asyncio
import json

import pytest

from repro.errors import InvalidInstanceError
from repro.online.checkpoint import IdleCheckpointPolicy, tenant_checkpoint_path
from repro.online.faults import FaultPlan, FaultRule, RetryPolicy
from repro.online.serving import ServingLoop, TenantSpec, load_tenant_specs

FLEET = {
    "defaults": {"family": "additive", "n": 36, "k": 3},
    "tenants": [
        {"id": "mono-a", "policy": "monotone", "seed": 21},
        {"id": "mono-b", "policy": "monotone", "seed": 22},
        {"id": "nonmono", "policy": "nonmonotone", "seed": 23},
        {"id": "sharded", "policy": "monotone", "seed": 24, "shards": 2},
    ],
}

RESULT_KEYS = ("selected", "value", "oracle_calls", "decisions")

FAST_RETRY = RetryPolicy(base_delay=0.0005, max_delay=0.002, jitter=0.1)


def specs():
    return load_tenant_specs(FLEET)


@pytest.fixture(scope="module")
def baseline():
    """One unfaulted serve of the module fleet."""
    return ServingLoop(specs()).serve()


def assert_results_match(baseline, report, *, skip=()):
    for tid, want in baseline["tenants"].items():
        if tid in skip:
            continue
        got = report["tenants"][tid]
        assert got["finished"], (tid, got.get("state"), got.get("error"))
        for key in RESULT_KEYS:
            assert got[key] == want[key], (tid, key)


class TestTransientFaultsAreInvisible:
    def test_feed_and_oracle_faults_bit_identical(self, baseline):
        plan = FaultPlan(seed=5, retry=FAST_RETRY, rules=(
            FaultRule("serve.feed", "transient", scope="mono-a", at=[1, 2]),
            FaultRule("oracle.batch", "transient", scope="nonmono",
                      rate=0.05),
            FaultRule("oracle.value", "transient", scope="sharded#s*",
                      rate=0.1),
            FaultRule("serve.feed", "latency", rate=0.2, delay=0.0005),
        ))
        report = ServingLoop(specs(), fault_plan=plan).serve()
        assert_results_match(baseline, report)
        assert report["totals"]["retries"] >= 1
        assert report["faults"]["fired"] >= 1
        assert report["totals"]["quarantined"] == 0

    def test_retried_tenant_reports_its_retries(self, baseline):
        plan = FaultPlan(retry=FAST_RETRY, rules=(
            FaultRule("serve.feed", "transient", scope="mono-b", at=[1]),
        ))
        report = ServingLoop(specs(), fault_plan=plan).serve()
        assert report["tenants"]["mono-b"]["retries"] == 1
        assert report["tenants"]["mono-a"]["retries"] == 0
        assert_results_match(baseline, report)


class TestQuarantine:
    @pytest.mark.parametrize("max_strikes", [1, 2, 3])
    def test_quarantined_after_exactly_max_strikes(self, baseline,
                                                   max_strikes):
        # An always-permanent rule on one tenant: it must be struck out
        # after exactly max_strikes faults, with every other tenant
        # bit-identical to the unfaulted serve.
        retry = RetryPolicy(base_delay=0.0005, max_delay=0.002,
                            max_attempts=10, max_strikes=max_strikes)
        plan = FaultPlan(retry=retry, rules=(
            FaultRule("serve.feed", "permanent", scope="mono-a", rate=1.0),
        ))
        report = ServingLoop(specs(), fault_plan=plan).serve()
        victim = report["tenants"]["mono-a"]
        assert victim["state"] == "quarantined"
        assert victim["strikes"] == max_strikes
        assert "permanent fault strikes" in victim["error"]
        assert not victim["finished"]
        assert report["totals"]["quarantined"] == 1
        assert_results_match(baseline, report, skip=("mono-a",))

    def test_exhausted_transient_retries_quarantine(self, baseline):
        retry = RetryPolicy(base_delay=0.0005, max_delay=0.002,
                            max_attempts=3)
        plan = FaultPlan(retry=retry, rules=(
            FaultRule("serve.feed", "transient", scope="mono-b", rate=1.0),
        ))
        report = ServingLoop(specs(), fault_plan=plan).serve()
        victim = report["tenants"]["mono-b"]
        assert victim["state"] == "quarantined"
        assert "persisted through 3 feed attempts" in victim["error"]
        assert_results_match(baseline, report, skip=("mono-b",))

    def test_finalize_skips_quarantined_tenants(self, tmp_path, baseline):
        # The quarantined tenant's durable checkpoint (none here, so no
        # file at all) must not be overwritten with post-fault state.
        plan = FaultPlan(retry=FAST_RETRY, rules=(
            FaultRule("serve.feed", "permanent", scope="mono-a", rate=1.0),
        ))
        root = str(tmp_path / "ckpt")
        report = ServingLoop(specs(), checkpoint_root=root,
                             fault_plan=plan).serve()
        assert report["tenants"]["mono-a"]["state"] == "quarantined"
        import os
        assert not os.path.exists(tenant_checkpoint_path(root, "mono-a"))
        assert os.path.exists(tenant_checkpoint_path(root, "mono-b"))


class TestCorruptCheckpointIsolation:
    """The satellite bugfix: one bad file must not abort the fleet."""

    def _serve_then_corrupt(self, tmp_path, text):
        root = str(tmp_path / "ckpt")
        ServingLoop(specs(), checkpoint_root=root).serve()
        path = tenant_checkpoint_path(root, "mono-b")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return root, path

    def test_truncated_checkpoint_quarantines_one_tenant(self, tmp_path,
                                                         baseline):
        root, path = self._serve_then_corrupt(
            tmp_path, '{"format": "repro-tenant-checkp')
        report = ServingLoop(specs(), checkpoint_root=root,
                             resume=True).serve()
        victim = report["tenants"]["mono-b"]
        assert victim["state"] == "quarantined"
        assert "unreadable checkpoint" in victim["error"]
        assert report["totals"]["quarantined"] == 1
        assert_results_match(baseline, report, skip=("mono-b",))
        # The corrupt evidence survives for post-mortem inspection.
        with open(path, "r", encoding="utf-8") as fh:
            assert fh.read().startswith('{"format"')

    def test_wrong_format_checkpoint_quarantines_cleanly(self, tmp_path,
                                                         baseline):
        root, _ = self._serve_then_corrupt(
            tmp_path, json.dumps({"format": "something-else/1"}) + "\n")
        report = ServingLoop(specs(), checkpoint_root=root,
                             resume=True).serve()
        victim = report["tenants"]["mono-b"]
        assert victim["state"] == "quarantined"
        assert victim["error"]
        assert_results_match(baseline, report, skip=("mono-b",))


class TestBackoffDeterminism:
    PLAN_KWARGS = dict(seed=11, retry=FAST_RETRY, rules=(
        FaultRule("serve.feed", "transient", scope="mono-a", at=[1, 2, 4]),
        FaultRule("oracle.batch", "transient", scope="sharded#s0",
                  rate=0.08),
    ))

    def test_identical_runs_identical_schedules(self):
        reports = [
            ServingLoop(specs(),
                        fault_plan=FaultPlan(**self.PLAN_KWARGS)).serve()
            for _ in range(2)
        ]
        a, b = reports
        assert a["faults"] == b["faults"]
        for tid in a["tenants"]:
            assert (a["tenants"][tid]["retry_delays"]
                    == b["tenants"][tid]["retry_delays"]), tid
            assert (a["tenants"][tid]["retries"]
                    == b["tenants"][tid]["retries"]), tid

    def test_delays_match_the_stateless_schedule(self):
        # Every recorded backoff equals RetryPolicy.delay recomputed from
        # (plan seed, scope, attempt) alone — nothing in process state —
        # which is what makes the schedule identical across a
        # checkpoint/resume hop.
        plan = FaultPlan(**self.PLAN_KWARGS)
        report = ServingLoop(specs(), fault_plan=plan).serve()
        delays = report["tenants"]["mono-a"]["retry_delays"]
        assert len(delays) == 3
        want = [plan.retry.delay(plan.seed, "mono-a", a)
                for a in (1, 2, 1)]  # at=[1,2] back-to-back, then at=[4]
        assert delays == want

    def test_schedule_survives_a_drain_resume_hop(self, tmp_path, baseline):
        # Phase 1 drains mid-serve (after the first faulted feed); phase
        # 2 resumes under the same plan.  Run the two-phase serve twice:
        # the faulted tenant's backoff schedule must repeat in both
        # phases, and the final results must match the unfaulted
        # baseline.  (The plan uses only at-based rules on one tenant:
        # a rate-based rule's *fired set* depends on how far its stream
        # got before the wall-clock drain point, which is timing, not
        # schedule.)
        plan_kwargs = dict(seed=11, retry=FAST_RETRY, rules=(
            FaultRule("serve.feed", "transient", scope="mono-a",
                      at=[1, 2, 4]),
        ))

        def two_phase(root):
            class DrainAfterFirstRetry(ServingLoop):
                async def _before_feed(self, tenant, lane):
                    if (tenant.spec.tenant_id == "mono-a"
                            and tenant.retries >= 1):
                        self.request_drain()

            p1 = DrainAfterFirstRetry(
                specs(), checkpoint_root=root,
                fault_plan=FaultPlan(**plan_kwargs)).serve()
            p2 = ServingLoop(
                specs(), checkpoint_root=root, resume=True,
                fault_plan=FaultPlan(**plan_kwargs)).serve()
            return p1, p2

        a1, a2 = two_phase(str(tmp_path / "run-a"))
        b1, b2 = two_phase(str(tmp_path / "run-b"))
        assert a1["totals"]["drained"] and b1["totals"]["drained"]
        for phase_a, phase_b in ((a1, b1), (a2, b2)):
            assert phase_a["faults"] == phase_b["faults"]
            for tid in phase_a["tenants"]:
                assert (phase_a["tenants"][tid]["retry_delays"]
                        == phase_b["tenants"][tid]["retry_delays"]), tid
        assert_results_match(baseline, a2)


class TestMemoryBudget:
    def test_budgeted_serve_bit_identical(self, tmp_path, baseline):
        report = ServingLoop(
            specs(), checkpoint_root=str(tmp_path / "ckpt"),
            memory_budget=2, park_arrivals=12,
        ).serve()
        assert_results_match(baseline, report)
        totals = report["totals"]
        assert totals["memory_budget"] == 2
        assert totals["max_resident"] <= 2
        assert totals["parks"] >= 1
        assert totals["rehydrations"] == totals["parks"]

    def test_budget_of_one_serializes_the_fleet(self, tmp_path, baseline):
        report = ServingLoop(
            specs(), checkpoint_root=str(tmp_path / "ckpt"),
            memory_budget=1, park_arrivals=10,
        ).serve()
        assert_results_match(baseline, report)
        assert report["totals"]["max_resident"] == 1

    def test_budget_without_parking_runs_each_to_completion(self, tmp_path,
                                                            baseline):
        report = ServingLoop(
            specs(), checkpoint_root=str(tmp_path / "ckpt"),
            memory_budget=2,
        ).serve()
        assert_results_match(baseline, report)
        assert report["totals"]["parks"] == 0

    def test_budget_composes_with_faults(self, tmp_path, baseline):
        plan = FaultPlan(retry=FAST_RETRY, rules=(
            FaultRule("serve.feed", "transient", scope="mono-a", at=[1]),
        ))
        report = ServingLoop(
            specs(), checkpoint_root=str(tmp_path / "ckpt"),
            memory_budget=2, park_arrivals=12, fault_plan=plan,
        ).serve()
        assert_results_match(baseline, report)
        assert report["tenants"]["mono-a"]["retries"] == 1

    def test_validation(self, tmp_path):
        with pytest.raises(InvalidInstanceError, match="checkpoint_root"):
            ServingLoop([TenantSpec("t", n=10)], memory_budget=2)
        with pytest.raises(InvalidInstanceError, match="mutually exclusive"):
            ServingLoop(
                [TenantSpec("t", n=10)],
                checkpoint_root=str(tmp_path),
                memory_budget=2,
                idle_policy=IdleCheckpointPolicy(),
            )
        with pytest.raises(InvalidInstanceError, match="park_arrivals"):
            ServingLoop([TenantSpec("t", n=10)], park_arrivals=5)
        with pytest.raises(InvalidInstanceError, match="memory_budget"):
            ServingLoop(
                [TenantSpec("t", n=10)],
                checkpoint_root=str(tmp_path), memory_budget=0,
            )


class TestSignalHandlers:
    def test_serve_async_installs_and_removes_both_handlers(self):
        import signal as signal_mod

        seen = {}

        async def run():
            loop = ServingLoop([TenantSpec("t", n=12)])
            ev_loop = asyncio.get_running_loop()
            original_add = ev_loop.add_signal_handler

            def spy_add(sig, cb, *args):
                seen[sig] = cb
                return original_add(sig, cb, *args)

            ev_loop.add_signal_handler = spy_add
            await loop.serve_async(install_signals=True)

        asyncio.run(run())
        assert set(seen) == {signal_mod.SIGINT, signal_mod.SIGTERM}
