"""Driver semantics: minibatch reveals, early stop, batch == sequential."""

import numpy as np
import pytest

from repro.core.oracle import CountingOracle
from repro.errors import InvalidInstanceError, OracleError
from repro.online.arrivals import (
    ArrivalSchedule,
    arrival_process_names,
    build_arrival_schedule,
)
from repro.online.driver import OnlineRun, run_online
from repro.online.policies import BestSingletonPolicy, SegmentedSubmodularPolicy
from repro.workloads.secretary_streams import (
    additive_values,
    coverage_utility,
    facility_utility,
)

ALL_PROCESSES = arrival_process_names()


@pytest.fixture(scope="module")
def fn():
    return coverage_utility(36, 15, rng=np.random.default_rng(2))


class TestOnlineRun:
    def test_ground_set_mismatch_rejected(self, fn):
        other, _ = additive_values(5, rng=np.random.default_rng(0))
        schedule = build_arrival_schedule("uniform", other, 0)
        with pytest.raises(InvalidInstanceError, match="ground set"):
            OnlineRun(fn, schedule, SegmentedSubmodularPolicy(3))

    def test_incremental_consumption_tracks_cursor(self, fn):
        schedule = build_arrival_schedule("uniform", fn, 1)
        run = OnlineRun(fn, schedule, SegmentedSubmodularPolicy(3))
        run.run(10)
        assert run.cursor == 10
        run.run(5)
        assert run.cursor == 15
        run.run()
        assert run.cursor == run.n and run.finished

    def test_early_stop_hides_the_future(self, fn):
        """A done policy stops the reveals — later elements stay unseen."""
        schedule = build_arrival_schedule("uniform", fn, 1)
        run = OnlineRun(fn, schedule, BestSingletonPolicy())
        run.run()
        assert run.finished
        unseen = [e for e in schedule.order if e not in run.oracle.arrived]
        assert unseen  # the single-hire rule fires before the stream ends
        with pytest.raises(OracleError):
            run.oracle.value(frozenset({unseen[0]}))

    def test_batch_reveal_is_per_batch_no_peeking(self, fn):
        """Everything in a revealed burst is queryable; beyond it is not."""
        schedule = build_arrival_schedule("bursty", fn, 3, mean_batch=6.0)
        run = OnlineRun(fn, schedule, SegmentedSubmodularPolicy(3))
        first_size = schedule.batch_sizes[0]
        run.run(first_size)
        assert run.oracle.arrived == frozenset(schedule.order[:first_size])

    def test_result_cached(self, fn):
        schedule = build_arrival_schedule("uniform", fn, 1)
        run = OnlineRun(fn, schedule, SegmentedSubmodularPolicy(3)).run()
        assert run.result() is run.result()

    def test_run_online_one_shot(self, fn):
        schedule = build_arrival_schedule("uniform", fn, 1)
        result = run_online(fn, schedule, SegmentedSubmodularPolicy(3))
        assert 1 <= len(result.selected) <= 3


class TestBatchSequentialEquivalence:
    """Vectorized minibatch driving decides exactly like per-arrival."""

    @pytest.mark.parametrize("family_rng", [("coverage", 5), ("facility", 6)])
    @pytest.mark.parametrize("process", ["bursty", "poisson"])
    def test_segmented_policy(self, family_rng, process):
        family, seed = family_rng
        if family == "coverage":
            fn = coverage_utility(40, 16, rng=np.random.default_rng(seed))
        else:
            fn = facility_utility(30, 8, rng=np.random.default_rng(seed))
        batched = build_arrival_schedule(process, fn, 9)
        assert max(batched.batch_sizes) > 1
        sequential = ArrivalSchedule(
            process="seq", seed=None, order=list(batched.order),
            batch_sizes=[1] * batched.n,
        )
        counting_b = CountingOracle(fn)
        res_b = OnlineRun(
            counting_b, batched, SegmentedSubmodularPolicy(4)
        ).run().result()
        counting_s = CountingOracle(fn)
        res_s = OnlineRun(
            counting_s, sequential, SegmentedSubmodularPolicy(4)
        ).run().result()
        assert res_b.selected == res_s.selected
        assert res_b.traces == res_s.traces

    def test_batch_path_bills_only_needed_queries(self):
        """Batched scoring skips arrivals the sequential pass never queries.

        The only billing overhead allowed over the per-arrival path is
        the pre-hire tail of a speculative batch (at most one partial
        batch per hire); skip-region, past-window, and already-hired
        segment arrivals must not be scored.
        """
        fn = coverage_utility(50, 20, rng=np.random.default_rng(8))
        batched = build_arrival_schedule("bursty", fn, 12, mean_batch=8.0)
        sequential = ArrivalSchedule(
            process="seq", seed=None, order=list(batched.order),
            batch_sizes=[1] * batched.n,
        )
        counting_b = CountingOracle(fn)
        res_b = OnlineRun(
            counting_b, batched, SegmentedSubmodularPolicy(5)
        ).run().result()
        counting_s = CountingOracle(fn)
        res_s = OnlineRun(
            counting_s, sequential, SegmentedSubmodularPolicy(5)
        ).run().result()
        assert res_b.selected == res_s.selected
        overhead = counting_b.calls - counting_s.calls
        max_batch = max(batched.batch_sizes)
        assert 0 <= overhead <= len(res_b.selected) * max_batch

    def test_batch_skip_region_never_scored(self):
        """The nonmonotone second-half policy must not bill first-half
        arrivals delivered in batches (they are skipped, not queried)."""
        from repro.online.policies import nonmonotone_half_policy

        fn = coverage_utility(40, 16, rng=np.random.default_rng(4))
        batched = build_arrival_schedule("bursty", fn, 6, mean_batch=7.0)
        counting = CountingOracle(fn)
        OnlineRun(
            counting, batched, nonmonotone_half_policy(batched.n, 3, False)
        ).run().result()
        # Strictly fewer counted queries than arrivals in the window —
        # impossible if the ~n/2 skip region were scored too.
        assert counting.calls <= batched.n - batched.n // 2 + 3 * max(
            batched.batch_sizes
        )


class TestLegacyStreamDriving:
    def test_drive_stream_stops_at_done(self):
        from repro.online.driver import drive_stream
        from repro.secretary.stream import SecretaryStream

        fn, _ = additive_values(25, rng=np.random.default_rng(3))
        stream = SecretaryStream(fn, rng=np.random.default_rng(6))
        policy = BestSingletonPolicy()
        result = drive_stream(stream, policy)
        assert policy.done
        assert stream.peek_remaining_count() > 0  # stopped mid-stream
        assert len(result.selected) <= 1
