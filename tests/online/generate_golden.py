"""Regenerate ``golden_refactor.json`` — the bit-identity pin for PR 4.

Captures hired sets and oracle-call counts of every online algorithm
(direct function calls *and* the engine adapters) on fixed seeds under
the default uniform arrival order.  The file was first generated from
the pre-refactor tree, so :mod:`tests.online.test_golden_equivalence`
proves the unified runtime reproduces the legacy per-algorithm loops
exactly.  Rerun only when an *intentional* behaviour change lands::

    PYTHONPATH=src:tests python tests/online/generate_golden.py
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.oracle import CountingOracle
from repro.engine.runner import run_one
from repro.engine.spec import RunSpec
from repro.matroids.uniform import UniformMatroid
from repro.scheduling.instance import Job
from repro.scheduling.intervals import AwakeInterval
from repro.secretary.bottleneck import bottleneck_secretary
from repro.secretary.classical import best_among_stream
from repro.secretary.knapsack_secretary import knapsack_submodular_secretary
from repro.secretary.matroid_secretary import matroid_submodular_secretary
from repro.secretary.online_scheduling import (
    ProcessorMarket,
    online_processor_selection,
)
from repro.secretary.robust import robust_topk_secretary
from repro.secretary.stream import SecretaryStream
from repro.secretary.subadditive import subadditive_secretary
from repro.secretary.submodular_secretary import (
    monotone_submodular_secretary,
    nonmonotone_submodular_secretary,
)
from repro.workloads.secretary_streams import (
    additive_values,
    coverage_utility,
    cut_utility,
    facility_utility,
    knapsack_weights,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_refactor.json")


def _sel(selected) -> list:
    return sorted(map(str, selected))


def direct_cases() -> dict:
    out = {}

    fn = coverage_utility(24, 10, rng=np.random.default_rng(1))
    counting = CountingOracle(fn)
    stream = SecretaryStream(counting, rng=np.random.default_rng(5))
    res = monotone_submodular_secretary(stream, 3)
    out["monotone/coverage"] = {"selected": _sel(res.selected), "calls": counting.calls}

    fn = facility_utility(18, 6, rng=np.random.default_rng(6))
    counting = CountingOracle(fn)
    stream = SecretaryStream(counting, rng=np.random.default_rng(8))
    res = monotone_submodular_secretary(stream, 4)
    out["monotone/facility"] = {"selected": _sel(res.selected), "calls": counting.calls}

    for algo_seed in (11, 1):  # both coin outcomes
        fn = cut_utility(20, rng=np.random.default_rng(2))
        counting = CountingOracle(fn)
        stream = SecretaryStream(counting, rng=np.random.default_rng(7))
        res = nonmonotone_submodular_secretary(
            stream, 3, rng=np.random.default_rng(algo_seed)
        )
        out[f"nonmonotone/cut/a{algo_seed}"] = {
            "selected": _sel(res.selected),
            "calls": counting.calls,
            "strategy": res.strategy,
        }

    for algo_seed in (13, 2):  # both coin outcomes
        fn, _ = additive_values(30, rng=np.random.default_rng(3))
        weights = knapsack_weights(fn.ground_set, 2, rng=np.random.default_rng(4))
        counting = CountingOracle(fn)
        stream = SecretaryStream(counting, rng=np.random.default_rng(9))
        res = knapsack_submodular_secretary(
            stream, weights, [1.0, 1.0], rng=np.random.default_rng(algo_seed)
        )
        out[f"knapsack/additive/a{algo_seed}"] = {
            "selected": _sel(res.selected),
            "calls": counting.calls,
            "strategy": res.strategy,
        }

    for k_est in (None, 2, 8):  # random guess + both guess branches
        fn = coverage_utility(26, 12, rng=np.random.default_rng(15))
        counting = CountingOracle(fn)
        stream = SecretaryStream(counting, rng=np.random.default_rng(16))
        res = matroid_submodular_secretary(
            stream,
            [UniformMatroid(fn.ground_set, 5)],
            rng=np.random.default_rng(17),
            k_estimate=k_est,
        )
        out[f"matroid/coverage/k{k_est}"] = {
            "selected": _sel(res.selected),
            "calls": counting.calls,
            "strategy": res.strategy,
        }

    fn, values = additive_values(25, rng=np.random.default_rng(18))
    counting = CountingOracle(fn)
    stream = SecretaryStream(counting, rng=np.random.default_rng(19))
    res_b = bottleneck_secretary(stream, values, 3)
    out["bottleneck/additive"] = {
        "selected": _sel(res_b.selected),
        "calls": counting.calls,
        "threshold": res_b.threshold,
        "hired_top_k": res_b.hired_top_k,
    }

    fn, values = additive_values(25, rng=np.random.default_rng(18))
    counting = CountingOracle(fn)
    stream = SecretaryStream(counting, rng=np.random.default_rng(20))
    res_r = robust_topk_secretary(stream, values, 4)
    out["robust/additive"] = {
        "selected": _sel(res_r.selected),
        "calls": counting.calls,
        "per_segment": [str(e) if e is not None else None for e in res_r.per_segment],
    }

    for algo_seed in (21, 2):  # both strategies
        fn, _ = additive_values(25, rng=np.random.default_rng(18))
        counting = CountingOracle(fn)
        stream = SecretaryStream(counting, rng=np.random.default_rng(22))
        res = subadditive_secretary(stream, 5, rng=np.random.default_rng(algo_seed))
        out[f"subadditive/additive/a{algo_seed}"] = {
            "selected": _sel(res.selected),
            "calls": counting.calls,
            "strategy": res.strategy,
        }

    fn, values = additive_values(12, rng=np.random.default_rng(24))
    counting = CountingOracle(fn)
    stream = SecretaryStream(counting, rng=np.random.default_rng(25))
    hired = best_among_stream(
        iter(stream), lambda e: stream.oracle.value(frozenset({e})), n_hint=stream.n
    )
    out["classical/additive"] = {
        "selected": [] if hired is None else [str(hired)],
        "calls": counting.calls,
    }

    offers = {
        f"p{i}": (AwakeInterval(f"p{i}", 2 * i, 2 * i + 3),) for i in range(6)
    }
    jobs = tuple(
        Job(id=f"j{t}", slots=frozenset({(f"p{t % 6}", t), (f"p{(t + 1) % 6}", t + 1)}))
        for t in range(8)
    )
    market = ProcessorMarket(offers=offers, jobs=jobs)
    sel = online_processor_selection(market, 2, rng=3)
    out["online_scheduling/market"] = {
        "selected": _sel(sel.hired),
        "utility": sel.utility,
        "scheduled": sorted(map(str, sel.scheduled_jobs)),
    }
    return out


def adapter_cases() -> dict:
    out = {}
    cells = [
        ("secretary", "additive", 30, 3, 0, "monotone"),
        ("secretary", "coverage", 24, 3, 0, "monotone"),
        ("secretary", "facility", 20, 3, 0, "monotone"),
        ("secretary", "cut", 20, 3, 0, "nonmonotone"),
        ("secretary", "additive", 30, 1, 0, "classical"),
        ("secretary", "additive", 30, 4, 0, "robust"),
        ("knapsack_secretary", "additive", 24, 2, 0, "online"),
        ("knapsack_secretary", "additive", 24, 1, 0, "online"),
    ]
    for task, family, n, p, h, method in cells:
        for trial in range(2):
            seed = 1000 + 17 * trial
            spec = RunSpec(
                family=family, n_jobs=n, n_processors=p, horizon=h,
                method=method, trial=trial, seed=seed, task=task,
            )
            rec = run_one(spec)
            out[f"{task}/{family}/{n}x{p}x{h}/{method}/t{trial}"] = {
                "cost": rec.cost,
                "utility": rec.utility,
                "oracle_work": rec.oracle_work,
                "n_chosen": rec.n_chosen,
                "fingerprint": rec.fingerprint,
            }
    return out


def main() -> None:
    golden = {"direct": direct_cases(), "adapter": adapter_cases()}
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
