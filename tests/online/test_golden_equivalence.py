"""The refactor's bit-identity pin: runtime == legacy per-algorithm loops.

``golden_refactor.json`` was generated from the *pre-refactor* tree
(see :mod:`tests.online.generate_golden`); these tests re-run every
captured case — direct algorithm calls and engine-adapter cells — on
the unified runtime and require hired sets, oracle-call counts,
strategies, and adapter metrics to match exactly.
"""

import json
import os

import pytest

from tests.online import generate_golden


@pytest.fixture(scope="module")
def golden():
    with open(generate_golden.GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_golden_file_is_committed():
    assert os.path.exists(generate_golden.GOLDEN_PATH)


class TestDirectCalls:
    """Every wrapper entry point reproduces its pre-refactor capture."""

    @pytest.fixture(scope="class")
    def measured(self):
        return generate_golden.direct_cases()

    def test_same_case_set(self, golden, measured):
        assert set(measured) == set(golden["direct"])

    def test_hired_sets_bit_identical(self, golden, measured):
        for case, want in golden["direct"].items():
            assert measured[case]["selected"] == want["selected"], case

    def test_oracle_call_counts_bit_identical(self, golden, measured):
        for case, want in golden["direct"].items():
            if "calls" in want:  # online_scheduling captures schedule, not calls
                assert measured[case]["calls"] == want["calls"], case

    def test_auxiliary_fields_match(self, golden, measured):
        for case, want in golden["direct"].items():
            for key in ("strategy", "threshold", "hired_top_k", "per_segment",
                        "utility", "scheduled"):
                if key in want:
                    assert measured[case][key] == want[key], (case, key)


class TestEngineAdapters:
    """secretary + knapsack_secretary cells reproduce their captures."""

    @pytest.fixture(scope="class")
    def measured(self):
        return generate_golden.adapter_cases()

    def test_same_cell_set(self, golden, measured):
        assert set(measured) == set(golden["adapter"])

    def test_records_bit_identical(self, golden, measured):
        for cell, want in golden["adapter"].items():
            got = measured[cell]
            assert got["utility"] == want["utility"], cell
            assert got["cost"] == want["cost"], cell
            assert got["oracle_work"] == want["oracle_work"], cell
            assert got["n_chosen"] == want["n_chosen"], cell
            assert got["fingerprint"] == want["fingerprint"], cell
