"""Arrival processes: registry, schedules, determinism, fingerprints."""

import math

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.online.arrivals import (
    ARRIVAL_PROCESSES,
    ArrivalSchedule,
    arrival_process_names,
    build_arrival_schedule,
    register_arrival_process,
)
from repro.secretary.stream import SecretaryStream
from repro.workloads.secretary_streams import additive_values, coverage_utility

from tests.online.procutil import process_params

ALL_PROCESSES = arrival_process_names()


@pytest.fixture(scope="module")
def fn():
    return coverage_utility(30, 12, rng=np.random.default_rng(3))


class TestRegistry:
    def test_builtin_processes_registered(self):
        assert {"uniform", "sorted_desc", "sorted_asc", "bursty", "poisson",
                "sliding_window", "replay"} <= set(ALL_PROCESSES)

    def test_names_sorted(self):
        assert list(ALL_PROCESSES) == sorted(ALL_PROCESSES)

    def test_unknown_process_rejected(self, fn):
        with pytest.raises(InvalidInstanceError, match="unknown arrival process"):
            build_arrival_schedule("no-such-process", fn, 0)

    def test_register_requires_name(self):
        with pytest.raises(InvalidInstanceError):
            register_arrival_process("", lambda fn, seed: None)

    def test_register_and_build_custom(self, fn):
        def reverse_sorted(utility, seed):
            order = sorted(utility.ground_set, key=repr, reverse=True)
            return ArrivalSchedule(
                process="rev", seed=None, order=order, batch_sizes=[1] * len(order)
            )

        register_arrival_process("rev", reverse_sorted)
        try:
            schedule = build_arrival_schedule("rev", fn, 0)
            assert schedule.order == sorted(fn.ground_set, key=repr, reverse=True)
        finally:
            del ARRIVAL_PROCESSES["rev"]


class TestScheduleInvariants:
    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_order_is_a_permutation(self, fn, process):
        schedule = build_arrival_schedule(
            process, fn, 11, **process_params(process, fn)
        )
        assert frozenset(schedule.order) == fn.ground_set
        assert len(schedule.order) == len(fn.ground_set)

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_batches_partition_the_order(self, fn, process):
        schedule = build_arrival_schedule(
            process, fn, 11, **process_params(process, fn)
        )
        assert sum(schedule.batch_sizes) == schedule.n
        assert all(b >= 1 for b in schedule.batch_sizes)
        walked = [a for _, batch in schedule.batches() for a in batch]
        assert walked == schedule.order

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_deterministic_in_seed(self, fn, process):
        params = process_params(process, fn)
        a = build_arrival_schedule(process, fn, 21, **params)
        b = build_arrival_schedule(process, fn, 21, **params)
        c = build_arrival_schedule(process, fn, 22, **params)
        assert a.order == b.order and a.batch_sizes == b.batch_sizes
        assert a.fingerprint() == b.fingerprint()
        # Value-sorted orders ignore the seed; replay reproduces its
        # recorded payload no matter the seed.
        if process not in ("sorted_desc", "sorted_asc", "replay"):
            assert a.order != c.order or a.batch_sizes != c.batch_sizes

    def test_batches_resume_mid_batch(self, fn):
        schedule = build_arrival_schedule("bursty", fn, 4, mean_batch=5.0)
        # Pick a start strictly inside some batch.
        first_size = schedule.batch_sizes[0]
        start = max(1, first_size - 1)
        walked = [a for _, batch in schedule.batches(start) for a in batch]
        assert walked == schedule.order[start:]
        pos0, first_batch = next(schedule.batches(start))
        assert pos0 == start

    def test_validation(self, fn):
        order = sorted(fn.ground_set, key=repr)
        with pytest.raises(InvalidInstanceError, match="batch sizes sum"):
            ArrivalSchedule(process="x", seed=0, order=order, batch_sizes=[1])
        with pytest.raises(InvalidInstanceError, match="positive"):
            ArrivalSchedule(
                process="x", seed=0, order=order,
                batch_sizes=[0, len(order)],
            )
        with pytest.raises(InvalidInstanceError, match="timestamp"):
            ArrivalSchedule(
                process="x", seed=0, order=order,
                batch_sizes=[1] * len(order), timestamps=[0.0],
            )


class TestUniform:
    def test_matches_secretary_stream_exactly(self, fn):
        for seed in (0, 7, 123):
            schedule = build_arrival_schedule("uniform", fn, seed)
            stream = SecretaryStream(fn, rng=np.random.default_rng(seed))
            assert schedule.order == stream.order

    def test_per_arrival_batches(self, fn):
        schedule = build_arrival_schedule("uniform", fn, 0)
        assert schedule.batch_sizes == [1] * schedule.n

    def test_accepts_live_generator(self, fn):
        gen = np.random.default_rng(9)
        schedule = build_arrival_schedule("uniform", fn, gen)
        expected = SecretaryStream(fn, rng=np.random.default_rng(9))
        assert schedule.order == expected.order
        assert schedule.seed is None  # opaque provenance


class TestSortedOrders:
    def test_descending_by_singleton_value(self):
        fn, values = additive_values(20, rng=np.random.default_rng(4))
        schedule = build_arrival_schedule("sorted_desc", fn, 0)
        vals = [values[e] for e in schedule.order]
        assert vals == sorted(vals, reverse=True)

    def test_ascending_is_reverse_of_descending(self):
        fn, _ = additive_values(20, rng=np.random.default_rng(4))
        desc = build_arrival_schedule("sorted_desc", fn, 0)
        asc = build_arrival_schedule("sorted_asc", fn, 0)
        assert asc.order == list(reversed(desc.order))

    def test_seed_independent(self, fn):
        a = build_arrival_schedule("sorted_desc", fn, 1)
        b = build_arrival_schedule("sorted_desc", fn, 999)
        assert a.order == b.order


class TestBursty:
    def test_reuses_uniform_permutation(self, fn):
        uniform = build_arrival_schedule("uniform", fn, 31)
        bursty = build_arrival_schedule("bursty", fn, 31)
        assert bursty.order == uniform.order

    def test_has_multi_arrival_batches(self, fn):
        schedule = build_arrival_schedule("bursty", fn, 0, mean_batch=6.0)
        assert max(schedule.batch_sizes) > 1

    def test_mean_batch_validated(self, fn):
        with pytest.raises(InvalidInstanceError, match="mean_batch"):
            build_arrival_schedule("bursty", fn, 0, mean_batch=0.5)


class TestPoisson:
    def test_timestamps_strictly_ordered(self, fn):
        schedule = build_arrival_schedule("poisson", fn, 0, rate=3.0)
        ts = schedule.timestamps
        assert ts is not None and len(ts) == schedule.n
        assert all(a < b for a, b in zip(ts, ts[1:]))

    def test_batches_group_by_integer_tick(self, fn):
        schedule = build_arrival_schedule("poisson", fn, 0, rate=5.0)
        pos = 0
        for size in schedule.batch_sizes:
            ticks = {math.floor(t) for t in schedule.timestamps[pos:pos + size]}
            assert len(ticks) == 1
            pos += size

    def test_rate_validated(self, fn):
        with pytest.raises(InvalidInstanceError, match="rate"):
            build_arrival_schedule("poisson", fn, 0, rate=0.0)


class TestSlidingWindow:
    def test_window_one_is_exactly_sorted(self):
        fn, _ = additive_values(15, rng=np.random.default_rng(4))
        sw = build_arrival_schedule("sliding_window", fn, 7, window=1)
        desc = build_arrival_schedule("sorted_desc", fn, 0)
        assert sw.order == desc.order

    def test_bounded_displacement(self):
        fn, _ = additive_values(40, rng=np.random.default_rng(4))
        window = 6
        sw = build_arrival_schedule("sliding_window", fn, 7, window=window)
        desc = build_arrival_schedule("sorted_desc", fn, 0)
        sorted_pos = {e: i for i, e in enumerate(desc.order)}
        for i, e in enumerate(sw.order):
            # An element can only leave the buffer after it entered it.
            assert i >= sorted_pos[e] - (window - 1)

    def test_window_validated(self, fn):
        with pytest.raises(InvalidInstanceError, match="window"):
            build_arrival_schedule("sliding_window", fn, 0, window=0)


class TestReplay:
    """The ``replay`` process: a recorded schedule, consumed verbatim."""

    def test_replays_order_batches_timestamps(self, fn):
        recorded = build_arrival_schedule("poisson", fn, 17, rate=4.0)
        replayed = build_arrival_schedule(
            "replay", fn, 0, payload=recorded.payload()
        )
        assert replayed.order == recorded.order
        assert replayed.batch_sizes == recorded.batch_sizes
        assert replayed.timestamps == recorded.timestamps
        assert replayed.process == "replay"

    def test_seed_is_irrelevant(self, fn):
        payload = build_arrival_schedule("bursty", fn, 3).payload()
        a = build_arrival_schedule("replay", fn, 1, payload=payload)
        b = build_arrival_schedule("replay", fn, 2, payload=payload)
        assert a.order == b.order and a.batch_sizes == b.batch_sizes

    def test_ground_set_mismatch_rejected(self, fn):
        other = coverage_utility(10, 5, rng=np.random.default_rng(8))
        payload = build_arrival_schedule("uniform", other, 3).payload()
        with pytest.raises(InvalidInstanceError, match="ground set"):
            build_arrival_schedule("replay", fn, 0, payload=payload)

    def test_corrupt_payload_rejected(self, fn):
        with pytest.raises(InvalidInstanceError, match="payload"):
            build_arrival_schedule(
                "replay", fn, 0, payload={"format": "something-else"}
            )


class TestArrivalStreamBridge:
    """workloads.arrival_stream: legacy streams over any process."""

    def test_uniform_matches_plain_stream(self, fn):
        from repro.workloads.secretary_streams import arrival_stream

        stream = arrival_stream(fn, "uniform", seed=17)
        plain = SecretaryStream(fn, rng=np.random.default_rng(17))
        assert stream.order == plain.order

    def test_nonuniform_order_through_legacy_api(self):
        from repro.secretary.submodular_secretary import (
            monotone_submodular_secretary,
        )
        from repro.workloads.secretary_streams import arrival_stream

        fn, values = additive_values(20, rng=np.random.default_rng(4))
        stream = arrival_stream(fn, "sorted_desc", seed=0)
        vals = [values[e] for e in stream.order]
        assert vals == sorted(vals, reverse=True)
        result = monotone_submodular_secretary(stream, 3)
        assert len(result.selected) <= 3


class TestPayloadRoundTrip:
    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_json_round_trip(self, fn, process):
        import json

        schedule = build_arrival_schedule(
            process, fn, 13, **process_params(process, fn)
        )
        payload = json.loads(json.dumps(schedule.payload()))
        back = ArrivalSchedule.from_payload(payload)
        assert back.order == schedule.order
        assert back.batch_sizes == schedule.batch_sizes
        assert back.timestamps == schedule.timestamps
        assert back.fingerprint() == schedule.fingerprint()

    def test_bad_format_rejected(self):
        with pytest.raises(InvalidInstanceError, match="payload"):
            ArrivalSchedule.from_payload({"format": "something-else"})

    def test_fingerprints_distinguish_processes(self, fn):
        prints = {
            build_arrival_schedule(
                p, fn, 5, **process_params(p, fn)
            ).fingerprint()
            for p in ALL_PROCESSES
        }
        assert len(prints) == len(ALL_PROCESSES)

    def test_timestamped_fingerprint_stable_through_checkpoint_hop(self, fn):
        """A Poisson schedule's fingerprint survives the checkpoint codec.

        Checkpoints serialise with ``sort_keys`` + strict JSON; float
        timestamps must round-trip exactly (Python floats do through
        ``json``), or a resumed shard would look like a different
        instance to provenance checks.
        """
        import json

        schedule = build_arrival_schedule("poisson", fn, 13, rate=5.0)
        assert schedule.timestamps is not None
        text = json.dumps(schedule.payload(), sort_keys=True, allow_nan=False)
        back = ArrivalSchedule.from_payload(json.loads(text))
        assert back.timestamps == schedule.timestamps
        assert back.fingerprint() == schedule.fingerprint()
        # And again through a second hop (resume → suspend → resume).
        text2 = json.dumps(back.payload(), sort_keys=True, allow_nan=False)
        assert ArrivalSchedule.from_payload(
            json.loads(text2)
        ).fingerprint() == schedule.fingerprint()
