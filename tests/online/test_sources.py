"""Arrival sources: streaming ≡ materialized, pinned end to end.

The tentpole equivalence suite: for every registered arrival process,
the lazily-yielding :class:`ArrivalSource` view must be indistinguishable
from the eager :class:`ArrivalSchedule` path — same orders, same
incremental content fingerprint (including across mid-stream suspend
points round-tripped through JSON), same hires and oracle-call counts
for every session policy at S ∈ {1, 2} — and its suspend state must
stay O(selected), not O(stream).
"""

import json

import numpy as np
import pytest

from repro.core.functions import AdditiveFunction
from repro.core.oracle import CountingOracle
from repro.engine.hashing import derive_seed
from repro.errors import InvalidInstanceError
from repro.online.arrivals import (
    ArrivalSource,
    ScheduleSource,
    arrival_process_names,
    build_arrival_schedule,
    build_arrival_source,
    source_from_spec,
)
from repro.online.checkpoint import make_checkpoint
from repro.online.driver import OnlineRun
from repro.online.policies import SegmentedSubmodularPolicy
from repro.online.session import (
    SESSION_POLICIES,
    _build_policy,
    _merge_rule,
    _shard_algo_seed,
    build_workload,
    start_session,
    start_sharded_session,
)
from repro.online.sharding import (
    ShardCounters,
    ShardSource,
    ShardedRun,
    shard_schedule,
)
from repro.workloads.secretary_streams import coverage_utility

from tests.online.procutil import process_params

ALL_PROCESSES = arrival_process_names()
N, K, SEED = 18, 3, 20100612


@pytest.fixture(scope="module")
def fn():
    return coverage_utility(30, 12, rng=np.random.default_rng(3))


class TestSourceContract:
    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_take_walks_the_materialized_schedule(self, fn, process):
        params = process_params(process, fn)
        source = build_arrival_source(process, fn, 13, **params)
        schedule = build_arrival_schedule(process, fn, 13, **params)
        walked, sizes = [], []
        while True:
            step = source.take(None)
            if step is None:
                break
            pos0, batch, stamps = step
            assert pos0 == len(walked)
            walked.extend(batch)
            sizes.append(len(batch))
            if schedule.timestamps is None:
                assert stamps is None
        assert walked == schedule.order
        assert sizes == schedule.batch_sizes
        assert source.exhausted
        assert source.materialize().order == schedule.order

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_limited_take_never_crosses_a_batch(self, fn, process):
        params = process_params(process, fn)
        source = build_arrival_source(process, fn, 13, **params)
        schedule = build_arrival_schedule(process, fn, 13, **params)
        bounds, pos = set(), 0
        for size in schedule.batch_sizes:
            pos += size
            bounds.add(pos)
        while True:
            step = source.take(2)
            if step is None:
                break
            pos0, batch, _ = step
            end = pos0 + len(batch)
            # A slice ends at a batch boundary or because the limit bit.
            assert end in bounds or len(batch) == 2
        assert source.cursor == schedule.n

    def test_unknown_source_spec_rejected(self, fn):
        with pytest.raises(InvalidInstanceError, match="source spec"):
            source_from_spec({"no": "process"}, fn)

    def test_schedule_source_wraps_any_schedule(self, fn):
        schedule = build_arrival_schedule("poisson", fn, 3, rate=4.0)
        source = ScheduleSource(schedule)
        _, _, stamps = source.take(None)
        assert stamps == schedule.timestamps[: len(stamps)]


class TestFingerprintEquivalence:
    """Satellite: incremental fingerprint == materialized fingerprint."""

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_drained_source_equals_schedule_fingerprint(self, fn, process):
        params = process_params(process, fn)
        source = build_arrival_source(process, fn, 13, **params)
        schedule = build_arrival_schedule(process, fn, 13, **params)
        while source.take(None) is not None:
            pass
        assert source.fingerprint() == schedule.fingerprint()

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_fingerprint_survives_every_suspend_point(self, fn, process):
        """Suspend at every cursor, JSON-hop the state, rebuild from the
        spec, drain — the chain digest must equal the eager schedule's
        fingerprint no matter where the stream was cut."""
        params = process_params(process, fn)
        schedule = build_arrival_schedule(process, fn, 13, **params)
        want = schedule.fingerprint()
        for cut in range(schedule.n + 1):
            source = build_arrival_source(process, fn, 13, **params)
            consumed = 0
            while consumed < cut:
                step = source.take(cut - consumed)
                assert step is not None
                consumed += len(step[1])
            assert source.cursor == cut
            hop = json.loads(json.dumps(
                {**source.spec(), "state": source.state_dict()},
                sort_keys=True, allow_nan=False,
            ))
            resumed = source_from_spec(hop, fn)
            resumed.restore(hop["state"])
            assert resumed.cursor == cut
            while resumed.take(None) is not None:
                pass
            assert resumed.fingerprint() == want, (process, cut)

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    @pytest.mark.parametrize("index", [0, 1])
    def test_shard_source_fingerprint_matches_shard_schedule(
        self, fn, process, index
    ):
        params = process_params(process, fn)
        parent = build_arrival_source(process, fn, 13, **params)
        shard_src = ShardSource(parent, index, 2)
        sharded = shard_schedule(
            build_arrival_schedule(process, fn, 13, **params), 2
        )[index]
        assert shard_src.order == sharded.order
        while shard_src.take(None) is not None:
            pass
        assert shard_src.fingerprint() == sharded.fingerprint()

    def test_restore_validates_cursor_bounds(self, fn):
        """The satellite bugfix: a bad cursor is a clean error, not a
        reference to an undefined ``schedule.n``."""
        source = build_arrival_source("bursty", fn, 13)
        state = source.state_dict()
        state["cursor"] = 999
        with pytest.raises(InvalidInstanceError, match="cursor 999"):
            source.restore(state)
        state["cursor"] = -1
        with pytest.raises(InvalidInstanceError, match="cursor -1"):
            source.restore(state)


def _recipe(policy, process, shards=1):
    return {
        "kind": "secretary-workload",
        "policy": policy,
        "family": "additive",
        "n": N,
        "k": K,
        "aux": 0,
        "n_knapsacks": 2,
        "distribution": "uniform",
        "seed": SEED,
        "process": process,
        "shards": shards,
    }


def _materialized_run(policy, process, shards, params):
    """The legacy eager path: schedule built up front, pre-split shards."""
    recipe = _recipe(policy, process, shards)
    fn, weights = build_workload(recipe)
    schedule = build_arrival_schedule(
        process, fn, derive_seed(SEED, "online-stream"), **params
    )
    if shards == 1:
        counting = CountingOracle(fn)
        run = OnlineRun(counting, schedule, _build_policy(recipe, fn, weights))
        selected = run.run().result().selected
        return frozenset(selected), counting.calls
    counters = ShardCounters()

    def policy_factory(index, shard):
        return _build_policy(
            recipe, fn, weights, n=shard.n,
            algo_seed=_shard_algo_seed(SEED, index, shards),
        )

    can_take, limit = _merge_rule(recipe, weights)
    run = ShardedRun.from_schedule(
        fn, schedule, shards, policy_factory,
        oracle_factory=counters, can_take=can_take, limit=limit,
    )
    selected = run.run().result().selected
    return frozenset(selected), counters.calls + run.merge_calls


class TestStreamingEqualsMaterialized:
    """The tentpole pin: sources end-to-end == schedules end-to-end."""

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    @pytest.mark.parametrize("policy", SESSION_POLICIES)
    def test_unsharded_hires_and_calls_identical(self, policy, process):
        recipe = _recipe(policy, process)
        fn, _ = build_workload(recipe)
        params = process_params(process, fn, seed=derive_seed(SEED, "online-stream"))
        streaming = start_session(
            policy=policy, family="additive", n=N, k=K, seed=SEED,
            process=process, process_params=params,
        ).advance()
        selected, calls = _materialized_run(policy, process, 1, params)
        assert frozenset(streaming.summary()["selected"]) == selected
        assert streaming.summary()["oracle_calls"] == calls

    @pytest.mark.parametrize("process", ALL_PROCESSES)
    @pytest.mark.parametrize("policy", SESSION_POLICIES)
    def test_two_shard_hires_and_calls_identical(self, policy, process):
        recipe = _recipe(policy, process, 2)
        fn, _ = build_workload(recipe)
        params = process_params(process, fn, seed=derive_seed(SEED, "online-stream"))
        streaming = start_sharded_session(
            policy=policy, family="additive", n=N, k=K, seed=SEED,
            process=process, process_params=params, shards=2,
        ).advance()
        selected, calls = _materialized_run(policy, process, 2, params)
        assert frozenset(streaming.summary()["selected"]) == selected
        assert streaming.summary()["oracle_calls"] == calls


class TestCheckpointStaysSmall:
    """v2 checkpoints are O(selected): no embedded stream, flat size."""

    @staticmethod
    def _checkpoint_bytes(n):
        values = {i: float((7 * i) % 101 + 1) for i in range(n)}
        fn = AdditiveFunction(values)
        source = build_arrival_source("bursty", fn, 5, mean_batch=4.0)
        run = OnlineRun(fn, source, SegmentedSubmodularPolicy(3))
        run.run(n // 2)
        ck = make_checkpoint(run)
        assert "schedule" not in ck
        assert "schedule" not in ck["source"]
        return len(json.dumps(ck, sort_keys=True))

    def test_size_flat_in_stream_length(self):
        small = self._checkpoint_bytes(500)
        big = self._checkpoint_bytes(5000)
        # 10x the stream must not show up in the payload (policy state
        # carries a few thresholds; allow slack, forbid O(n)).
        assert big < 2 * small

    def test_decision_log_is_the_selected_set(self, fn):
        source = build_arrival_source("bursty", fn, 13)
        run = OnlineRun(fn, source, SegmentedSubmodularPolicy(3)).run()
        ck = make_checkpoint(run)
        assert sorted(e for _, e in ck["decisions"]) == sorted(
            run.result().selected, key=repr
        )
        order = run.schedule.order
        for pos, element in ck["decisions"]:
            assert order[pos] == element
