"""Shared helpers for process-parametrized online tests.

``replay`` consumes a recorded schedule payload, so sweeps over
``arrival_process_names()`` need per-process builder kwargs: every other
process builds from ``(utility, seed)`` alone.
"""

from repro.online.arrivals import build_arrival_schedule


def process_params(process, fn, seed=99):
    """Extra builder kwargs *process* needs in a parametrized sweep."""
    if process == "replay":
        recorded = build_arrival_schedule("bursty", fn, seed, mean_batch=3.0)
        return {"payload": recorded.payload()}
    return {}
