"""The asyncio serving layer: concurrency must not change any decision.

The contract under test: N tenants multiplexed through one
:class:`~repro.online.serving.ServingLoop` hire the same elements and
bill the same oracle-call counts as N sequential per-tenant sessions;
bounded queues cap how far a producer runs ahead of a slow consumer;
idle and drain checkpoints resume to the uninterrupted result.
"""

import asyncio
import json
import os

import pytest

from repro.cli import main
from repro.errors import InvalidInstanceError
from repro.online.checkpoint import (
    IdleCheckpointPolicy,
    list_tenant_checkpoints,
    read_tenant_checkpoint,
    tenant_checkpoint_path,
    write_tenant_checkpoint,
)
from repro.online.serving import ServingLoop, TenantSpec, load_tenant_specs
from repro.online.session import WorkloadCache, workload_key


MIXED_FLEET = {
    "defaults": {"family": "additive", "n": 36, "k": 3},
    "tenants": [
        {"id": "mono", "policy": "monotone", "seed": 11},
        {"id": "mono-bursty", "policy": "monotone", "seed": 11,
         "process": "bursty"},
        {"id": "robust", "policy": "robust", "seed": 12,
         "family": "coverage"},
        {"id": "classical", "policy": "classical", "seed": 13,
         "process": "sorted_desc"},
        {"id": "knapsack", "policy": "knapsack", "seed": 14},
        {"id": "nonmono", "policy": "nonmonotone", "seed": 15,
         "process": "poisson"},
        {"id": "sharded", "policy": "monotone", "seed": 16, "shards": 2,
         "process": "bursty"},
    ],
}


def sequential_summaries(specs):
    """Each tenant alone through the plain pull-based session layer."""
    out = {}
    for spec in specs:
        session = spec.start().advance()
        out[spec.tenant_id] = session.summary()
    return out


class TestConcurrentEqualsSequential:
    def test_mixed_fleet_bit_identical(self):
        specs = load_tenant_specs(MIXED_FLEET)
        report = ServingLoop(specs, queue_depth=3).serve()
        expected = sequential_summaries(specs)
        assert report["totals"]["finished"] == len(specs)
        for tid, got in report["tenants"].items():
            want = expected[tid]
            assert got["finished"] is True
            assert got["selected"] == want["selected"], tid
            assert got["value"] == want["value"], tid
            assert got["oracle_calls"] == want["oracle_calls"], tid
            assert got["cursor"] == want["cursor"], tid

    def test_shared_workload_cache_changes_no_counts(self):
        # Five tenants on one workload: the cache dedupes utility builds
        # and memoises values, yet per-tenant counts stay identical.
        specs = load_tenant_specs({
            "replicate": {"count": 5, "family": "coverage", "n": 24,
                          "k": 3, "policy": "robust", "seed_start": 0},
        })
        for spec in specs:
            spec.seed = 7  # same workload for every tenant
        cache = WorkloadCache()
        report = ServingLoop(specs, workload_cache=cache).serve()
        expected = sequential_summaries(specs)
        for tid, got in report["tenants"].items():
            assert got["selected"] == expected[tid]["selected"]
            assert got["oracle_calls"] == expected[tid]["oracle_calls"]
        stats = report["workload_cache"]
        assert stats["workloads"] == 1
        assert stats["workload_hits"] == 4

    def test_workload_cache_shares_instances_and_memoises(self):
        cache = WorkloadCache()
        recipe = {"family": "additive", "n": 12, "aux": 0, "seed": 3,
                  "distribution": "uniform", "policy": "monotone"}
        fn1, _, shared1 = cache.lookup(recipe)
        fn2, _, shared2 = cache.lookup({**recipe, "policy": "robust"})
        assert fn1 is fn2  # one utility object per workload key
        assert shared1 is shared2
        assert (cache.hits, cache.misses) == (1, 1)
        subset = frozenset(list(fn1.ground_set)[:2])
        first = shared1.value(subset)
        assert shared1.value(subset) == first
        assert shared1.hits == 1  # second query served from the cache
        assert len(cache) == 1
        assert cache.stats()["value_hits"] == 1

    def test_batch_limit_none_is_the_default(self):
        loop = ServingLoop([TenantSpec("t", n=10)])
        assert loop.batch_limit is None


class TestBackpressure:
    def test_slow_oracle_caps_producer_lead(self):
        depth = 2

        class SlowOracleLoop(ServingLoop):
            async def _before_feed(self, tenant, lane):
                if tenant.spec.tenant_id == "slow":
                    await asyncio.sleep(0.001)

        specs = load_tenant_specs({
            "defaults": {"family": "additive", "n": 40, "k": 3,
                         "policy": "monotone"},
            "tenants": [{"id": "slow", "seed": 1},
                        {"id": "fast", "seed": 2}],
        })
        report = SlowOracleLoop(specs, queue_depth=depth).serve()
        expected = sequential_summaries(specs)
        slow = report["tenants"]["slow"]
        # The stalled consumer let the producer run ahead — but never
        # past the queue bound plus the step blocked at put() plus the
        # one the consumer has dequeued.
        assert slow["max_in_flight"] > 1
        assert slow["max_in_flight"] <= depth + 2
        assert report["tenants"]["fast"]["finished"] is True
        for tid in ("slow", "fast"):
            got = report["tenants"][tid]
            assert got["selected"] == expected[tid]["selected"]
            assert got["oracle_calls"] == expected[tid]["oracle_calls"]


class TestDrainAndResume:
    def drain_after(self, loop, min_arrivals):
        """Run *loop*, requesting drain once *min_arrivals* consumed."""
        async def run():
            task = asyncio.ensure_future(loop.serve_async())
            while not task.done():
                consumed = sum(t.arrivals for t in loop._tenants)
                if consumed >= min_arrivals:
                    loop.request_drain()
                    break
                await asyncio.sleep(0)
            return await task
        return asyncio.run(run())

    def test_drain_leaves_every_tenant_resumable(self, tmp_path):
        specs = load_tenant_specs(MIXED_FLEET)
        root = str(tmp_path / "ck")
        first = self.drain_after(
            ServingLoop(specs, checkpoint_root=root, queue_depth=2), 12
        )
        assert first["totals"]["drained"] is True
        # Every tenant snapshotted, finished or not.
        assert sorted(list_tenant_checkpoints(root)) == sorted(
            s.tenant_id for s in specs
        )
        resumed = ServingLoop(
            specs, checkpoint_root=root, resume=True
        ).serve()
        assert resumed["totals"]["resumed"] == len(specs)
        assert resumed["totals"]["finished"] == len(specs)
        expected = sequential_summaries(specs)
        for tid, got in resumed["tenants"].items():
            assert got["selected"] == expected[tid]["selected"], tid
            assert got["value"] == expected[tid]["value"], tid

    def test_idle_checkpoint_then_resume_mid_serve(self, tmp_path):
        specs = load_tenant_specs({
            "tenants": [{"id": "paced", "policy": "monotone",
                         "family": "additive", "n": 24, "k": 3,
                         "seed": 9}],
        })
        root = str(tmp_path / "ck")
        loop = ServingLoop(
            specs,
            checkpoint_root=root,
            idle_policy=IdleCheckpointPolicy(idle_seconds=0.01),
            pace_seconds=0.03,
        )

        async def run():
            task = asyncio.ensure_future(loop.serve_async())
            while not task.done():
                if any(t.idle_checkpoints > 0 and not t.finished
                       for t in loop._tenants):
                    loop.request_drain()
                await asyncio.sleep(0.005)
            return await task

        report = asyncio.run(run())
        assert report["totals"]["idle_checkpoints"] >= 1
        assert report["checkpoint_latency"]["count"] >= 1
        assert report["checkpoint_latency"]["max_seconds"] > 0
        resumed = ServingLoop(
            specs, checkpoint_root=root, resume=True
        ).serve()
        expected = sequential_summaries(specs)["paced"]
        got = resumed["tenants"]["paced"]
        assert got["finished"] is True
        assert got["selected"] == expected["selected"]
        assert got["value"] == expected["value"]


class TestTenantCheckpointLayout:
    def test_round_trip_and_listing(self, tmp_path):
        root = str(tmp_path)
        payload = {"format": "x", "cursor": 3}
        path = write_tenant_checkpoint(payload, root, "tenant/42 β")
        assert path == tenant_checkpoint_path(root, "tenant/42 β")
        assert os.path.exists(path)
        assert read_tenant_checkpoint(root, "tenant/42 β") == payload
        assert list_tenant_checkpoints(root) == {"tenant/42 β": path}

    def test_missing_reads_as_none(self, tmp_path):
        assert read_tenant_checkpoint(str(tmp_path), "ghost") is None
        assert list_tenant_checkpoints(str(tmp_path / "absent")) == {}

    @pytest.mark.parametrize("bad", ["", ".", ".."])
    def test_pathological_ids_rejected(self, tmp_path, bad):
        with pytest.raises(InvalidInstanceError):
            tenant_checkpoint_path(str(tmp_path), bad)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tenant_checkpoint_path(str(tmp_path), "t")
        os.makedirs(os.path.dirname(path))
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        with pytest.raises(InvalidInstanceError, match="corrupt"):
            read_tenant_checkpoint(str(tmp_path), "t")


class TestIdleCheckpointPolicy:
    def test_due_needs_idle_time_and_progress(self):
        policy = IdleCheckpointPolicy(idle_seconds=0.5, min_progress=2)
        assert policy.due("t", cursor=2, idle_for=0.4) is False  # too busy
        assert policy.due("t", cursor=2, idle_for=0.6) is True
        policy.note_checkpoint("t", cursor=2)
        assert policy.due("t", cursor=3, idle_for=9.9) is False  # +1 < 2
        assert policy.due("t", cursor=4, idle_for=9.9) is True

    def test_validation(self):
        with pytest.raises(InvalidInstanceError):
            IdleCheckpointPolicy(idle_seconds=-1)
        with pytest.raises(InvalidInstanceError):
            IdleCheckpointPolicy(min_progress=0)


class TestSpecLoading:
    def test_bare_list_accepted(self):
        specs = load_tenant_specs([{"id": "a"}, {"id": "b"}])
        assert [s.tenant_id for s in specs] == ["a", "b"]

    def test_defaults_merge_under_entries(self):
        specs = load_tenant_specs({
            "defaults": {"n": 99, "policy": "robust"},
            "tenants": [{"id": "a", "policy": "classical"}],
        })
        assert specs[0].n == 99
        assert specs[0].policy == "classical"

    def test_replicate_expands_seeds_and_ids(self):
        specs = load_tenant_specs({
            "replicate": {"count": 3, "seed_start": 40,
                          "id_format": "u{seed}", "n": 10},
        })
        assert [s.tenant_id for s in specs] == ["u40", "u41", "u42"]
        assert [s.seed for s in specs] == [40, 41, 42]
        assert all(s.n == 10 for s in specs)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(InvalidInstanceError, match="duplicate"):
            load_tenant_specs([{"id": "a"}, {"id": "a"}])

    def test_unknown_field_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown spec field"):
            load_tenant_specs([{"id": "a", "polciy": "monotone"}])

    def test_missing_id_rejected(self):
        with pytest.raises(InvalidInstanceError, match="'id'"):
            load_tenant_specs([{"policy": "monotone"}])

    def test_empty_spec_rejected(self):
        with pytest.raises(InvalidInstanceError, match="no tenants"):
            load_tenant_specs({"tenants": []})

    def test_workload_key_splits_on_workload_fields_only(self):
        base = {"family": "additive", "n": 10, "aux": 0, "seed": 1,
                "distribution": "uniform", "policy": "monotone"}
        assert workload_key(base) == workload_key({**base, "policy": "robust",
                                                   "process": "bursty"})
        assert workload_key(base) != workload_key({**base, "seed": 2})
        assert workload_key(base) != workload_key({**base,
                                                   "policy": "knapsack"})


class TestServeCLI:
    def write_spec(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_serve_matches_plain_run(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, {
            "tenants": [{"id": "solo", "policy": "monotone",
                         "family": "coverage", "n": 30, "k": 3, "seed": 5,
                         "process": "bursty"}],
        })
        root = str(tmp_path / "ck")
        assert main(["online", "serve", spec, "--checkpoint-dir", root]) == 0
        report = json.loads(capsys.readouterr().out)
        assert main([
            "online", "run", "--policy", "monotone", "--family", "coverage",
            "--n", "30", "--k", "3", "--seed", "5", "--process", "bursty",
        ]) == 0
        oneshot = json.loads(capsys.readouterr().out)
        tenant = report["tenants"]["solo"]
        assert tenant["selected"] == oneshot["selected"]
        assert tenant["value"] == oneshot["value"]
        assert tenant["oracle_calls"] == oneshot["oracle_calls"]
        # The final snapshot landed in the tenant's directory.
        assert read_tenant_checkpoint(root, "solo") is not None

    def test_serve_report_output_file(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, {
            "replicate": {"count": 4, "n": 12, "k": 2, "seed_start": 0},
        })
        out = tmp_path / "report.json"
        assert main(["online", "serve", spec, "--output", str(out)]) == 0
        capsys.readouterr()
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["totals"]["tenants"] == 4
        assert report["totals"]["finished"] == 4

    def test_bad_spec_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope", encoding="utf-8")
        assert main(["online", "serve", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_idle_seconds_requires_checkpoint_dir(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path, [{"id": "a"}])
        assert main(["online", "serve", spec, "--idle-seconds", "0.1"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err


class TestInspectParamsRendering:
    def test_params_rendered_sorted_with_containers_summarized(
            self, tmp_path, capsys):
        from tests.online.procutil import process_params
        from repro.online.session import start_session

        session = start_session(
            policy="monotone", n=20, k=3, seed=4, process="replay",
            process_params=process_params(
                "replay", start_session(n=20, seed=4).base
            ),
        ).advance(6)
        ck = tmp_path / "ck.json"
        ck.write_text(json.dumps(session.checkpoint()), encoding="utf-8")
        assert main(["online", "inspect", str(ck)]) == 0
        payload = json.loads(capsys.readouterr().out)
        params = payload["params"]
        assert list(params) == sorted(params)
        # The replay payload is summarized, not dumped wholesale.
        assert isinstance(params["payload"], str)
        assert params["payload"].startswith("<object:")

    def test_bursty_params_scalar_values_verbatim(self, tmp_path, capsys):
        from repro.online.session import start_session

        session = start_session(
            n=20, k=3, seed=4, process="bursty",
            process_params={"mean_batch": 5.0},
        ).advance(6)
        ck = tmp_path / "ck.json"
        ck.write_text(json.dumps(session.checkpoint()), encoding="utf-8")
        assert main(["online", "inspect", str(ck)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["params"]["mean_batch"] == 5.0
