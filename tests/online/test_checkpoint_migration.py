"""Schema-v1 (PR 5) checkpoints still resume through the migration shim.

These tests hand-build *genuine* v1 payloads — full embedded schedule,
no source spec, no decision log, no frontier — exactly as the previous
release wrote them, and assert this release resumes them to the same
hires as the uninterrupted run.  They must keep passing for as long as
v1 sits in ``SUPPORTED_CHECKPOINT_VERSIONS``.
"""

import json

import numpy as np
import pytest

from repro.core.oracle import CountingOracle
from repro.errors import InvalidInstanceError
from repro.online.arrivals import build_arrival_schedule
from repro.online.checkpoint import (
    SUPPORTED_CHECKPOINT_VERSIONS,
    make_checkpoint,
    resume_run,
)
from repro.online.driver import OnlineRun
from repro.online.policies import SegmentedSubmodularPolicy
from repro.online.session import (
    resume_any_session,
    resume_session,
    start_session,
    start_sharded_session,
)
from repro.workloads.secretary_streams import coverage_utility

N, K, SEED = 16, 3, 20100612


def _roundtrip(payload):
    return json.loads(json.dumps(payload, sort_keys=True))


def _as_v1(session, *, drop_marker=False):
    """Rewrite a live session's state as the payload PR 5 wrote."""
    v2 = session.checkpoint()
    v1 = {
        "format": "repro-online-checkpoint/1",
        "cursor": v2["cursor"],
        "schedule": session.run.schedule.payload(),
        "policy": v2["policy"],
        "instance": v2["instance"],
    }
    if not drop_marker:
        v1["schema_version"] = 1
    return _roundtrip(v1)


def _shard_entry_as_v1(run, v2_entry, *, drop_marker=False):
    entry = {
        "format": "repro-online-checkpoint/1",
        "cursor": v2_entry["cursor"],
        "schedule": run.schedule.payload(),
        "policy": v2_entry["policy"],
    }
    if not drop_marker:
        entry["schema_version"] = 1
    return entry


class TestUnshardedV1:
    @pytest.mark.parametrize("policy", ["monotone", "classical", "knapsack"])
    @pytest.mark.parametrize("process", ["uniform", "bursty"])
    def test_v1_resumes_to_the_same_hires(self, policy, process):
        kwargs = dict(policy=policy, family="additive", n=N, k=K, seed=SEED,
                      process=process)
        want = start_session(**kwargs).advance().run.result().selected
        for cut in range(N + 1):
            session = start_session(**kwargs).advance(cut)
            if session.finished:
                continue
            resumed = resume_session(_as_v1(session)).advance()
            assert resumed.finished
            assert resumed.run.result().selected == want, (policy, process, cut)

    def test_missing_schema_version_means_version_one(self):
        kwargs = dict(policy="monotone", family="coverage", n=N, k=K, seed=5,
                      process="bursty")
        want = start_session(**kwargs).advance().run.result().selected
        session = start_session(**kwargs).advance(7)
        v1 = _as_v1(session, drop_marker=True)
        assert "schema_version" not in v1
        resumed = resume_session(v1).advance()
        assert resumed.run.result().selected == want

    def test_v1_resume_populates_decision_log(self):
        """The shim reconstructs decisions so a v1 load re-saves as v2."""
        kwargs = dict(policy="classical", family="additive", n=N, k=1, seed=4)
        session = start_session(**kwargs).advance()
        resumed = resume_session(_as_v1(session))
        hired = {e for _, e in resumed.run.decisions}
        assert hired == set(resumed.run.policy.hired_set())
        rehop = _roundtrip(resumed.checkpoint())
        assert rehop["schema_version"] == 2
        assert "schedule" not in rehop

    def test_v1_bad_cursor_is_clean_error(self):
        session = start_session(n=12, k=2, seed=1).advance(3)
        v1 = _as_v1(session)
        v1["cursor"] = 99
        with pytest.raises(InvalidInstanceError, match="cursor 99"):
            resume_session(v1)

    def test_unsupported_version_lists_supported(self):
        session = start_session(n=12, k=2, seed=1).advance(3)
        ck = session.checkpoint()
        ck["schema_version"] = 7
        supported = ", ".join(str(v) for v in SUPPORTED_CHECKPOINT_VERSIONS)
        with pytest.raises(InvalidInstanceError, match=f"supported: {supported}"):
            resume_session(_roundtrip(ck))


class TestShardedV1:
    def test_v1_manifest_resumes_to_the_same_hires(self):
        kwargs = dict(policy="monotone", family="coverage", n=30, k=3, seed=5,
                      process="bursty", shards=3)
        want = start_sharded_session(**kwargs).advance().run.result().selected
        session = start_sharded_session(**kwargs).advance(11)
        v2 = session.checkpoint()
        v1 = _roundtrip({
            "format": v2["format"],
            "schema_version": 1,
            "num_shards": v2["num_shards"],
            "salt": v2["salt"],
            "limit": v2["limit"],
            "shards": [
                _shard_entry_as_v1(run, entry)
                for run, entry in zip(session.run.runs, v2["shards"])
            ],
            "instance": v2["instance"],
        })
        for entry in v1["shards"]:
            assert "source" not in entry and "schedule" in entry
        resumed = resume_any_session(v1).advance()
        assert resumed.finished
        assert resumed.run.result().selected == want

    def test_mixed_manifest_v1_and_v2_entries(self):
        """Per-entry dispatch: a manifest may mix migrated and fresh shards."""
        kwargs = dict(policy="monotone", family="additive", n=24, k=3, seed=9,
                      process="bursty", shards=2)
        want = start_sharded_session(**kwargs).advance().run.result().selected
        session = start_sharded_session(**kwargs).advance(9)
        v2 = session.checkpoint()
        mixed = dict(v2)
        mixed["shards"] = [
            _shard_entry_as_v1(session.run.runs[0], v2["shards"][0]),
            v2["shards"][1],
        ]
        resumed = resume_any_session(_roundtrip(mixed)).advance()
        assert resumed.run.result().selected == want


class TestDriverLevelV1:
    def test_raw_v1_payload_through_resume_run(self):
        fn = coverage_utility(20, 8, rng=np.random.default_rng(2))
        schedule = build_arrival_schedule("bursty", fn, 7, mean_batch=3.0)
        want = (
            OnlineRun(CountingOracle(fn), schedule, SegmentedSubmodularPolicy(K))
            .run().result().selected
        )
        for cut in (0, 5, 13, 20):
            run = OnlineRun(
                CountingOracle(fn), schedule, SegmentedSubmodularPolicy(K)
            ).run(cut)
            v2 = make_checkpoint(run)
            v1 = _roundtrip({
                "format": "repro-online-checkpoint/1",
                "schema_version": 1,
                "cursor": cut,
                "schedule": schedule.payload(),
                "policy": v2["policy"],
            })
            resumed = resume_run(v1, CountingOracle(fn))
            assert resumed.run().result().selected == want, cut
