"""Crash-point audit at process level: hard kills and real signals.

Tier-1 subset of the full ``benchmarks/fault_smoke.py`` matrix: the
serve CLI is run in real subprocesses, hard-killed (``os._exit(137)``)
at registered checkpoint-write kill points, and ``serve --resume`` must
recover every tenant bit-identical to an unfaulted baseline — plus the
SIGTERM satellite: a real SIGTERM drains and checkpoints exactly like
SIGINT instead of dropping state.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.online.faults import KILL_EXIT_CODE
from repro.online.serving import ServingLoop, load_tenant_specs

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

FLEET = {
    "defaults": {"family": "additive", "n": 32, "k": 3},
    "tenants": [
        {"id": "mono", "policy": "monotone", "seed": 31},
        {"id": "sharded", "policy": "monotone", "seed": 32, "shards": 2},
    ],
}

RESULT_KEYS = ("selected", "value", "oracle_calls", "decisions", "cursor")


def cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return env


def run_serve(*args, expect=0, timeout=60):
    cmd = [sys.executable, "-m", "repro", "online", "serve", *args]
    proc = subprocess.run(cmd, cwd=REPO, env=cli_env(),
                          capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == expect, (proc.returncode, proc.stderr[-1500:])
    return proc


@pytest.fixture(scope="module")
def baseline():
    """Unfaulted in-process serve of the same fleet the CLI runs."""
    return ServingLoop(load_tenant_specs(FLEET)).serve()


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(FLEET))
    return str(path)


def assert_recovered(baseline, report):
    for tid, want in baseline["tenants"].items():
        got = report["tenants"][tid]
        assert got["finished"], (tid, got.get("state"), got.get("error"))
        for key in RESULT_KEYS:
            assert got[key] == want[key], (tid, key)


class TestKillPointRecovery:
    @pytest.mark.parametrize("site", ["checkpoint.mid_write",
                                      "checkpoint.after_write"])
    def test_hard_kill_then_resume_bit_identical(self, tmp_path, spec_file,
                                                 baseline, site):
        plan = tmp_path / "kill.json"
        plan.write_text(json.dumps({
            "format": "repro-fault-plan/1", "seed": 0,
            "rules": [{"site": site, "kind": "kill", "at": [1]}],
        }))
        ckpt = str(tmp_path / "ckpt")
        run_serve(spec_file, "--checkpoint-dir", ckpt,
                  "--fault-plan", str(plan), expect=KILL_EXIT_CODE)
        # mid_write kills inside the torn-write window: at most a stray
        # temp file may exist, never a truncated checkpoint.
        if os.path.isdir(ckpt):
            for root, _dirs, files in os.walk(ckpt):
                for name in files:
                    if name.endswith(".tmp"):
                        continue
                    with open(os.path.join(root, name)) as fh:
                        json.load(fh)  # parses => not torn
        out = str(tmp_path / "resumed.json")
        run_serve(spec_file, "--checkpoint-dir", ckpt, "--resume",
                  "--output", out)
        with open(out) as fh:
            assert_recovered(baseline, json.load(fh))


class TestSigtermDrains:
    def test_sigterm_drains_checkpoints_and_resumes(self, tmp_path,
                                                    spec_file, baseline):
        ckpt = str(tmp_path / "ckpt")
        out = str(tmp_path / "drained.json")
        cmd = [sys.executable, "-m", "repro", "online", "serve", spec_file,
               "--checkpoint-dir", ckpt, "--pace-seconds", "0.05",
               "--output", out]
        proc = subprocess.Popen(cmd, cwd=REPO, env=cli_env(),
                                stdout=subprocess.PIPE,
                                stderr=subprocess.PIPE, text=True)
        try:
            time.sleep(1.0)  # let the paced serve get genuinely mid-stream
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, proc.stderr.read()[-1500:]
        with open(out) as fh:
            drained = json.load(fh)
        assert drained["totals"]["drained"] is True
        # Mid-stream: SIGTERM landed before the paced streams finished.
        assert drained["totals"]["finished"] < len(baseline["tenants"])
        resumed_out = str(tmp_path / "resumed.json")
        run_serve(spec_file, "--checkpoint-dir", ckpt, "--resume",
                  "--output", resumed_out)
        with open(resumed_out) as fh:
            report = json.load(fh)
        assert_recovered(baseline, report)
        assert report["totals"]["resumed"] >= 1
