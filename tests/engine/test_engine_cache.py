"""Result cache: hit/miss accounting, the disk mirror, and robustness."""

import json
import os

from repro.engine.cache import ResultCache, _filename
from repro.engine.runner import run_sweep
from repro.engine.spec import SweepSpec

SMALL = SweepSpec(
    families=("multi",), grid=((8, 2, 16),), methods=("incremental",),
    trials=2, master_seed=20100612,
)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        key = ResultCache.key_for("abc123", "incremental")
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, {"cost": 5.0})
        assert cache.get(key) == {"cost": 5.0}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_methods_do_not_collide(self):
        cache = ResultCache()
        cache.put(ResultCache.key_for("fp", "plain"), {"cost": 1.0})
        assert cache.get(ResultCache.key_for("fp", "lazy")) is None

    def test_disk_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache")
        first = ResultCache(path)
        key = ResultCache.key_for("deadbeef", "lazy")
        first.put(key, {"cost": 2.5, "oracle_work": 7})
        # A brand-new cache over the same directory resumes from disk.
        second = ResultCache(path)
        assert second.get(key) == {"cost": 2.5, "oracle_work": 7}
        assert second.hits == 1

    def test_clear_keeps_disk(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        key = ResultCache.key_for("fp", "plain")
        cache.put(key, {"cost": 1.0})
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key) == {"cost": 1.0}  # reloaded from the mirror

    def test_tasks_do_not_collide(self):
        cache = ResultCache()
        cache.put(ResultCache.key_for("fp", "m", "schedule_all"), {"cost": 1.0})
        assert cache.get(ResultCache.key_for("fp", "m", "secretary")) is None


class TestCorruptMirror:
    """Corrupt/partial disk entries are misses, never crashes."""

    def _poison(self, path, key, content):
        with open(os.path.join(path, _filename(key)), "w") as fh:
            fh.write(content)

    def test_truncated_json_is_a_miss(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        key = ResultCache.key_for("fp", "lazy")
        self._poison(path, key, '{"cost": 2.')  # torn write
        assert cache.get(key) is None
        assert cache.misses == 1
        # and the cell can be re-cached over the corpse
        cache.put(key, {"cost": 2.5})
        assert cache.get(key) == {"cost": 2.5}

    def test_non_dict_json_is_a_miss(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        key = ResultCache.key_for("fp", "plain")
        self._poison(path, key, "[1, 2, 3]")
        assert cache.get(key) is None

    def test_binary_garbage_is_a_miss(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        key = ResultCache.key_for("fp", "plain")
        with open(os.path.join(path, _filename(key)), "wb") as fh:
            fh.write(b"\x80\x81\xfe\xff")
        assert cache.get(key) is None

    def test_corrupt_entry_under_sweep_recovers(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        first = run_sweep(SMALL, cache=cache)
        # Corrupt every mirror file; the sweep must simply re-solve.
        for name in os.listdir(path):
            with open(os.path.join(path, name), "w") as fh:
                fh.write("not json")
        fresh = ResultCache(path)
        rerun = run_sweep(SMALL, cache=fresh)
        assert not any(r.cache_hit for r in rerun.records)
        assert [r.cost for r in rerun.records] == [r.cost for r in first.records]

    def test_stale_payload_missing_fields_is_resolved(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        record = run_sweep(SMALL, cache=cache).records[0]
        key = ResultCache.key_for(record.fingerprint, record.method, record.task)
        # A payload from an older schema without all metric fields must
        # not satisfy run_one.
        self._poison(path, key, json.dumps({"cost": record.cost}))
        fresh = ResultCache(path)
        rerun = run_sweep(SMALL, cache=fresh)
        assert rerun.records[0].cache_hit is False
        assert rerun.records[0].cost == record.cost


class TestMultiprocessingRoundTrip:
    """Disk-backed cache behaviour across spawn-context workers."""

    def test_hits_survive_worker_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        first = run_sweep(SMALL, workers=2, cache=cache)
        assert not any(r.cache_hit for r in first.records)
        # Second parallel run: workers re-open the mirror and hit.
        second = run_sweep(SMALL, workers=2, cache=ResultCache(cache.path))
        assert all(r.cache_hit for r in second.records)
        assert [r.cost for r in second.records] == [r.cost for r in first.records]

    def test_workers_tolerate_poisoned_mirror(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        first = run_sweep(SMALL, workers=2, cache=cache)
        for name in os.listdir(path):
            with open(os.path.join(path, name), "w") as fh:
                fh.write("{torn")
        rerun = run_sweep(SMALL, workers=2, cache=ResultCache(path))
        assert not any(r.cache_hit for r in rerun.records)
        assert [r.cost for r in rerun.records] == [r.cost for r in first.records]
