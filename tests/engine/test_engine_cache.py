"""Result cache: hit/miss accounting and the disk mirror."""

from repro.engine.cache import ResultCache


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        key = ResultCache.key_for("abc123", "incremental")
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, {"cost": 5.0})
        assert cache.get(key) == {"cost": 5.0}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_methods_do_not_collide(self):
        cache = ResultCache()
        cache.put(ResultCache.key_for("fp", "plain"), {"cost": 1.0})
        assert cache.get(ResultCache.key_for("fp", "lazy")) is None

    def test_disk_roundtrip(self, tmp_path):
        path = str(tmp_path / "cache")
        first = ResultCache(path)
        key = ResultCache.key_for("deadbeef", "lazy")
        first.put(key, {"cost": 2.5, "oracle_work": 7})
        # A brand-new cache over the same directory resumes from disk.
        second = ResultCache(path)
        assert second.get(key) == {"cost": 2.5, "oracle_work": 7}
        assert second.hits == 1

    def test_clear_keeps_disk(self, tmp_path):
        path = str(tmp_path / "cache")
        cache = ResultCache(path)
        key = ResultCache.key_for("fp", "plain")
        cache.put(key, {"cost": 1.0})
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key) == {"cost": 1.0}  # reloaded from the mirror
