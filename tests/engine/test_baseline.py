"""`repro bench`: suites, reports, the regression gate, and its CLI."""

import copy
import json

import pytest

from repro.cli import main
from repro.engine.baseline import (
    BENCH_FORMAT,
    PROFILES,
    Tolerances,
    compare_reports,
    default_baseline_path,
    has_failures,
    load_report,
    regression_table,
    run_bench,
    suite_for,
    write_report,
)
from repro.errors import InvalidInstanceError


@pytest.fixture(scope="module")
def smoke_report():
    """One real smoke-profile run shared by the comparison tests."""
    return run_bench("smoke")


class TestProfiles:
    def test_profiles_cover_every_task(self):
        from repro.engine import TASKS

        for profile, suite in PROFILES.items():
            assert {s.task for s in suite} == set(TASKS), profile

    def test_unknown_profile_rejected(self):
        with pytest.raises(InvalidInstanceError):
            suite_for("nope")


class TestRunBench:
    def test_report_structure(self, smoke_report):
        assert smoke_report["format"] == BENCH_FORMAT
        assert smoke_report["profile"] == "smoke"
        assert smoke_report["suite_fingerprint"]
        assert smoke_report["cells"]
        for cid, cell in smoke_report["cells"].items():
            task = cid.split("/")[0]
            assert task in {s.task for s in PROFILES["smoke"]}
            for metric in ("trials", "mean_cost", "mean_utility",
                           "mean_oracle_work", "mean_wall_time", "fingerprints"):
                assert metric in cell, (cid, metric)

    def test_report_roundtrips_through_disk(self, smoke_report, tmp_path):
        path = str(tmp_path / "BENCH_smoke.json")
        write_report(smoke_report, path)
        assert load_report(path) == json.loads(json.dumps(smoke_report))

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(InvalidInstanceError):
            load_report(str(path))


class TestCompareReports:
    def test_report_passes_against_itself(self, smoke_report):
        findings = compare_reports(smoke_report, smoke_report)
        assert not has_failures(findings)
        assert findings == []

    def test_wall_time_noise_below_floor_is_tolerated(self, smoke_report):
        measured = copy.deepcopy(smoke_report)
        for cell in measured["cells"].values():
            cell["mean_wall_time"] *= 1.5  # ms-scale cells: under the floor
        assert not has_failures(compare_reports(measured, smoke_report))

    def test_2x_wall_time_regression_fails(self, smoke_report):
        # Put the baseline above the noise floor so the ratio applies,
        # then regress the measurement by 2x (the injected scenario the
        # CI gate exists for).
        baseline = copy.deepcopy(smoke_report)
        cid = next(iter(baseline["cells"]))
        baseline["cells"][cid]["mean_wall_time"] = 0.5
        measured = copy.deepcopy(baseline)
        measured["cells"][cid]["mean_wall_time"] = 1.0
        findings = compare_reports(measured, baseline)
        assert has_failures(findings)
        assert any(f.metric == "mean_wall_time" and f.cell == cid for f in findings)
        assert "mean_wall_time" in regression_table(findings)

    def test_2x_cost_regression_fails(self, smoke_report):
        measured = copy.deepcopy(smoke_report)
        cid = next(iter(measured["cells"]))
        measured["cells"][cid]["mean_cost"] *= 2.0
        findings = compare_reports(measured, smoke_report)
        assert has_failures(findings)
        assert any(f.metric == "mean_cost" for f in findings)

    def test_cost_improvement_also_fails(self, smoke_report):
        # Deterministic metrics gate drift in both directions: a solver
        # change that alters solutions must regenerate the baseline.
        measured = copy.deepcopy(smoke_report)
        cid = next(iter(measured["cells"]))
        measured["cells"][cid]["mean_cost"] *= 0.5
        assert has_failures(compare_reports(measured, smoke_report))

    def test_oracle_work_regression_fails_but_improvement_passes(self, smoke_report):
        cid = next(iter(smoke_report["cells"]))
        worse = copy.deepcopy(smoke_report)
        worse["cells"][cid]["mean_oracle_work"] *= 1.5
        assert has_failures(compare_reports(worse, smoke_report))
        better = copy.deepcopy(smoke_report)
        better["cells"][cid]["mean_oracle_work"] *= 0.5
        assert not has_failures(compare_reports(better, smoke_report))

    def test_fingerprint_drift_fails(self, smoke_report):
        measured = copy.deepcopy(smoke_report)
        cid = next(iter(measured["cells"]))
        measured["cells"][cid]["fingerprints"] = ["0" * 64]
        findings = compare_reports(measured, smoke_report)
        assert any(f.metric == "fingerprints" for f in findings)

    def test_missing_cell_fails_new_cell_informs(self, smoke_report):
        measured = copy.deepcopy(smoke_report)
        cid = next(iter(measured["cells"]))
        cell = measured["cells"].pop(cid)
        measured["cells"]["secretary/new/1x1x1/monotone"] = cell
        findings = compare_reports(measured, smoke_report)
        fails = [f for f in findings if f.severity == "fail"]
        infos = [f for f in findings if f.severity == "info"]
        assert any(f.cell == cid and f.metric == "presence" for f in fails)
        assert any("new cell" in f.note for f in infos)
        # info findings never gate on their own
        assert has_failures(infos) is False

    def test_custom_tolerances(self, smoke_report):
        measured = copy.deepcopy(smoke_report)
        for cell in measured["cells"].values():
            cell["mean_oracle_work"] *= 1.3
        loose = Tolerances(oracle_factor=1.5)
        assert has_failures(compare_reports(measured, smoke_report))
        assert not has_failures(compare_reports(measured, smoke_report, loose))


class TestBenchCli:
    def test_update_then_gate_passes(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--profile", "smoke", "--update-baseline"]) == 0
        capsys.readouterr()
        assert main(["bench", "--profile", "smoke"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert (tmp_path / "BENCH_smoke.json").exists()
        assert (tmp_path / default_baseline_path("smoke")).exists()

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--profile", "smoke", "--update-baseline"]) == 0
        capsys.readouterr()
        # Inject a synthetic 2x cost regression by halving the
        # baseline's recorded cost for one cell (the measured run is
        # then 2x the baseline; the wall-time variant is covered in
        # TestCompareReports).
        path = default_baseline_path("smoke")
        baseline = json.load(open(path))
        cid = next(iter(baseline["cells"]))
        baseline["cells"][cid]["mean_cost"] /= 2.0
        with open(path, "w") as fh:
            json.dump(baseline, fh)
        assert main(["bench", "--profile", "smoke"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is False
        assert any(f["metric"] == "mean_cost" for f in payload["findings"])

    def test_missing_baseline_is_a_clean_error(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--profile", "smoke"]) == 2
        assert "no baseline" in capsys.readouterr().err
