"""Task adapters: registry, dispatch, determinism, and parity."""

import numpy as np
import pytest

from repro.engine import (
    SweepSpec,
    RunSpec,
    TASKS,
    build_instance,
    get_task,
    run_one,
    run_sweep,
    task_names,
)
from repro.errors import InvalidInstanceError
from repro.scheduling.prize_collecting import prize_collecting_schedule
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import monotone_submodular_secretary

MASTER = 20100612


def spec_for(task, family, method, n=20, p=2, h=16, params=()):
    sweep = SweepSpec(
        task=task, families=(family,), grid=((n, p, h),), methods=(method,),
        trials=1, master_seed=MASTER, params=params,
    )
    return sweep.expand()[0]


class TestRegistry:
    def test_all_four_tasks_registered(self):
        assert {"schedule_all", "prize_collecting", "secretary",
                "knapsack_secretary"} <= set(TASKS)
        assert task_names() == tuple(sorted(TASKS))

    def test_unknown_task_rejected(self):
        with pytest.raises(InvalidInstanceError):
            get_task("nope")
        with pytest.raises(InvalidInstanceError):
            SweepSpec(task="nope", families=("multi",), grid=((4, 2, 8),))

    def test_every_adapter_validates_families_and_methods(self):
        for name, adapter in TASKS.items():
            family = adapter.families()[0]
            with pytest.raises(InvalidInstanceError):
                SweepSpec(task=name, families=("no-such-family",),
                          grid=((8, 2, 12),), methods=(adapter.methods[0],))
            with pytest.raises(InvalidInstanceError):
                SweepSpec(task=name, families=(family,),
                          grid=((8, 2, 12),), methods=("no-such-method",))


class TestEveryTaskRuns:
    """Each registered task produces a complete record via run_one."""

    CELLS = [
        ("schedule_all", "multi", "incremental", (10, 2, 16), ()),
        ("prize_collecting", "certifiable", "lazy", (6, 2, 12),
         (("n_candidate_intervals", 10),)),
        ("prize_collecting", "certifiable", "exact", (6, 2, 12),
         (("n_candidate_intervals", 10),)),
        ("secretary", "additive", "monotone", (30, 3, 0), ()),
        ("secretary", "additive", "classical", (30, 3, 0), ()),
        ("secretary", "additive", "robust", (30, 3, 0), ()),
        ("secretary", "coverage", "monotone", (24, 3, 0), ()),
        ("secretary", "cut", "nonmonotone", (20, 3, 0), ()),
        ("secretary", "facility", "monotone", (20, 3, 0), ()),
        ("knapsack_secretary", "additive", "online", (20, 2, 0), ()),
    ]

    @pytest.mark.parametrize("task,family,method,grid,params", CELLS)
    def test_record_is_complete(self, task, family, method, grid, params):
        spec = spec_for(task, family, method, *grid, params=params)
        record = run_one(spec)
        assert record.task == task
        assert record.fingerprint and len(record.fingerprint) == 64
        assert record.cost >= 0.0
        assert record.utility >= 0.0
        assert record.oracle_work >= 0
        assert record.n_chosen >= 0
        assert record.wall_time >= 0.0

    @pytest.mark.parametrize("task,family,method,grid,params", CELLS)
    def test_solve_is_deterministic(self, task, family, method, grid, params):
        spec = spec_for(task, family, method, *grid, params=params)
        a, b = run_one(spec), run_one(spec)
        assert (a.fingerprint, a.cost, a.utility, a.oracle_work, a.n_chosen) == (
            b.fingerprint, b.cost, b.utility, b.oracle_work, b.n_chosen
        )


class TestAdapterParity:
    """Engine records must match direct solver calls on the same instance."""

    def test_prize_collecting_matches_direct(self):
        spec = spec_for(
            "prize_collecting", "certifiable", "lazy", 6, 2, 12,
            params=(("n_candidate_intervals", 10), ("epsilon", 0.25),
                    ("target_fraction", 0.6)),
        )
        record = run_one(spec)
        inst = build_instance(spec)
        direct = prize_collecting_schedule(inst, 0.6 * inst.total_value(), 0.25)
        assert record.cost == pytest.approx(direct.cost)
        assert record.utility == pytest.approx(direct.value)
        assert record.n_chosen == len(direct.greedy.chosen)

    def test_secretary_matches_direct(self):
        spec = spec_for("secretary", "additive", "monotone", 40, 4, 0)
        record = run_one(spec)
        instance = get_task("secretary").build(spec)
        stream = SecretaryStream(
            instance.fn, rng=np.random.default_rng(instance.stream_seed)
        )
        direct = monotone_submodular_secretary(stream, 4)
        assert record.utility == pytest.approx(
            instance.fn.value(frozenset(direct.selected))
        )
        assert record.n_chosen == len(direct.selected)

    def test_secretary_ratio_is_sane(self):
        # utility/cost is the competitive ratio; it can never exceed 1
        # for additive streams (cost is the exact offline optimum).
        sweep = SweepSpec(
            task="secretary", families=("additive",), grid=((40, 4, 0),),
            methods=("monotone", "classical", "robust"), trials=3,
            master_seed=MASTER,
        )
        for record in run_sweep(sweep).records:
            assert record.cost > 0
            assert record.utility <= record.cost + 1e-9

    def test_knapsack_methods_share_instance(self):
        # Same cell => same fingerprint regardless of how often we build.
        spec = spec_for("knapsack_secretary", "additive", "online", 20, 3, 0)
        adapter = get_task("knapsack_secretary")
        fp1 = adapter.fingerprint(adapter.build(spec))
        fp2 = adapter.fingerprint(adapter.build(spec))
        assert fp1 == fp2


class TestCrossTaskIsolation:
    def test_same_coordinates_different_tasks_do_not_collide_in_cache(self):
        from repro.engine import ResultCache

        cache = ResultCache()
        # additive secretary and knapsack share the family name
        # "additive"; records must still cache under distinct keys.
        s1 = spec_for("secretary", "additive", "monotone", 20, 2, 0)
        s2 = spec_for("knapsack_secretary", "additive", "online", 20, 2, 0)
        r1, r2 = run_one(s1, cache), run_one(s2, cache)
        assert len(cache) == 2
        again1, again2 = run_one(s1, cache), run_one(s2, cache)
        assert again1.cache_hit and again2.cache_hit
        assert again1.cost == r1.cost and again2.cost == r2.cost

    def test_build_instance_dispatches_on_task(self):
        sched = build_instance(spec_for("schedule_all", "multi", "incremental"))
        secr = build_instance(spec_for("secretary", "additive", "monotone", 20, 2, 0))
        assert hasattr(sched, "jobs")
        assert hasattr(secr, "fn")

    def test_run_spec_default_task_is_schedule_all(self):
        spec = RunSpec(family="multi", n_jobs=5, n_processors=2, horizon=10,
                       method="incremental", trial=0, seed=1)
        assert spec.task == "schedule_all"
        assert build_instance(spec).n_jobs == 5
