"""Stable fingerprints: same instance -> same hash, regardless of construction."""

from repro.engine.hashing import derive_seed, instance_fingerprint, spec_fingerprint
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.power import AffineCost
from repro.workloads.jobs import random_multi_interval_instance


def _tiny(job_order=(0, 1)):
    jobs = [
        Job("a", {("p0", 0), ("p0", 1)}),
        Job("b", {("p1", 2)}),
    ]
    return ScheduleInstance(
        ["p0", "p1"], [jobs[i] for i in job_order], 4, AffineCost(2.0)
    )


class TestInstanceFingerprint:
    def test_deterministic_across_rebuilds(self):
        assert instance_fingerprint(_tiny()) == instance_fingerprint(_tiny())

    def test_job_order_does_not_matter(self):
        assert instance_fingerprint(_tiny((0, 1))) == instance_fingerprint(_tiny((1, 0)))

    def test_distinct_instances_differ(self):
        a = random_multi_interval_instance(6, 2, 12, rng=0)
        b = random_multi_interval_instance(6, 2, 12, rng=1)
        assert instance_fingerprint(a) != instance_fingerprint(b)

    def test_cost_model_matters(self):
        jobs = [Job("a", {("p", 0)})]
        x = ScheduleInstance(["p"], jobs, 2, AffineCost(2.0))
        y = ScheduleInstance(["p"], jobs, 2, AffineCost(3.0))
        assert instance_fingerprint(x) != instance_fingerprint(y)

    def test_same_seed_same_generator_same_hash(self):
        a = random_multi_interval_instance(8, 3, 16, rng=42)
        b = random_multi_interval_instance(8, 3, 16, rng=42)
        assert instance_fingerprint(a) == instance_fingerprint(b)


class TestDeriveSeed:
    def test_stable_and_cell_local(self):
        assert derive_seed(7, "multi", 10, 3, 20, 0, ()) == derive_seed(
            7, "multi", 10, 3, 20, 0, ()
        )
        assert derive_seed(7, "multi", 10, 3, 20, 0, ()) != derive_seed(
            7, "multi", 10, 3, 20, 1, ()
        )

    def test_nonnegative_63bit(self):
        for trial in range(20):
            s = derive_seed(0, "f", trial)
            assert 0 <= s < 2**63


class TestSpecFingerprint:
    def test_key_order_insensitive(self):
        assert spec_fingerprint({"a": 1, "b": 2}) == spec_fingerprint({"b": 2, "a": 1})
