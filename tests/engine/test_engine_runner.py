"""Sweep runner: determinism, caching, engine parity, multiprocessing."""

import pytest

from repro.engine import (
    FAMILIES,
    ResultCache,
    RunSpec,
    SweepSpec,
    build_instance,
    run_one,
    run_sweep,
)
from repro.errors import InvalidInstanceError
from repro.scheduling.solver import schedule_all_jobs

MASTER = 20100612

SMALL = SweepSpec(
    families=("multi", "bursty_arrivals", "hetero_energy"),
    grid=((8, 2, 16),),
    methods=("incremental",),
    trials=2,
    master_seed=MASTER,
)

E12_LIKE = SweepSpec(
    families=("multi",),
    grid=((10, 3, 20),),
    methods=("plain", "lazy", "incremental"),
    trials=2,
    master_seed=MASTER + 1,
)


class TestSweepSpec:
    def test_expand_is_deterministic(self):
        assert SMALL.expand() == SMALL.expand()

    def test_methods_share_instance_seed(self):
        by_cell = {}
        for spec in E12_LIKE.expand():
            by_cell.setdefault((spec.family, spec.trial), set()).add(spec.seed)
        assert all(len(seeds) == 1 for seeds in by_cell.values())

    def test_unknown_family_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SweepSpec(families=("nope",), grid=((4, 2, 8),))

    def test_all_registered_families_build(self):
        for family in FAMILIES:
            spec = RunSpec(
                family=family, n_jobs=5, n_processors=2, horizon=12,
                method="incremental", trial=0, seed=99,
            )
            instance = build_instance(spec)
            assert instance.n_jobs == 5


class TestRunSweepDeterminism:
    def test_same_spec_same_records(self):
        a = run_sweep(SMALL)
        b = run_sweep(SMALL)
        assert [r.to_dict() for r in a.records] == [
            {**r.to_dict(), "wall_time": a.records[i].wall_time}
            for i, r in enumerate(b.records)
        ]

    def test_fingerprints_stable_under_master_seed(self):
        fps = [r.fingerprint for r in run_sweep(SMALL).records]
        assert fps == [r.fingerprint for r in run_sweep(SMALL).records]
        shifted = SweepSpec(**{**SMALL.__dict__, "master_seed": MASTER + 5})
        assert fps != [r.fingerprint for r in run_sweep(shifted).records]


class TestEngineParity:
    """Engine-run results must equal direct schedule_all_jobs calls."""

    @pytest.mark.parametrize("method", ["plain", "lazy", "incremental"])
    def test_matches_direct_solve(self, method):
        for spec in SweepSpec(
            families=("multi",), grid=((10, 3, 20),), methods=(method,),
            trials=2, master_seed=MASTER + 1,
        ).expand():
            record = run_one(spec)
            direct = schedule_all_jobs(build_instance(spec), method=method)
            assert record.cost == pytest.approx(direct.cost)
            assert record.utility == pytest.approx(direct.greedy.utility)
            assert record.oracle_work == direct.oracle_work
            assert record.n_chosen == len(direct.greedy.chosen)

    def test_methods_agree_across_engines(self):
        assert run_sweep(E12_LIKE).methods_agree()


class TestCaching:
    def test_second_run_is_all_hits(self):
        cache = ResultCache()
        first = run_sweep(SMALL, cache=cache)
        assert not any(r.cache_hit for r in first.records)
        misses = cache.misses
        second = run_sweep(SMALL, cache=cache)
        assert all(r.cache_hit for r in second.records)
        assert cache.misses == misses  # no new solves
        assert [r.cost for r in first.records] == [r.cost for r in second.records]

    def test_cache_is_method_sensitive(self):
        cache = ResultCache()
        run_sweep(E12_LIKE, cache=cache)
        keys = {ResultCache.key_for(r.fingerprint, r.method)
                for r in run_sweep(E12_LIKE, cache=cache).records}
        assert len(keys) == len(E12_LIKE.expand())


class TestMultiprocessing:
    def test_parallel_matches_inline(self):
        inline = run_sweep(SMALL)
        parallel = run_sweep(SMALL, workers=2)
        assert [(r.fingerprint, r.cost, r.oracle_work) for r in inline.records] == [
            (r.fingerprint, r.cost, r.oracle_work) for r in parallel.records
        ]

    def test_parallel_disk_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        run_sweep(SMALL, workers=2, cache=cache)
        rerun = run_sweep(SMALL, cache=cache)
        assert all(r.cache_hit for r in rerun.records)

    def test_more_workers_than_cells(self):
        # The pool is capped at the cell count: asking for 32 workers on
        # a 2-cell sweep must neither hang nor change results.
        specs = SweepSpec(
            families=("multi",), grid=((6, 2, 12),), methods=("incremental",),
            trials=2, master_seed=MASTER,
        ).expand()
        inline = run_sweep(specs)
        parallel = run_sweep(specs, workers=32)
        assert [(r.fingerprint, r.cost) for r in inline.records] == [
            (r.fingerprint, r.cost) for r in parallel.records
        ]

    def test_spawn_context_is_used(self, monkeypatch):
        import multiprocessing

        import repro.engine.runner as runner_mod

        seen = {}
        real_get_context = multiprocessing.get_context

        def spy(method=None):
            seen["method"] = method
            return real_get_context(method)

        monkeypatch.setattr(runner_mod.multiprocessing, "get_context", spy)
        run_sweep(SMALL, workers=2)
        assert seen["method"] == "spawn"


class TestVerboseProgress:
    def test_one_line_per_cell_inline(self):
        import io

        buf = io.StringIO()
        result = run_sweep(SMALL, verbose=True, progress_stream=buf)
        lines = [ln for ln in buf.getvalue().splitlines() if ln]
        assert len(lines) == len(result.records)
        total = len(result.records)
        assert lines[0].startswith(f"[1/{total}]")
        assert lines[-1].startswith(f"[{total}/{total}]")
        for line, record in zip(lines, result.records):
            assert record.family in line
            assert record.method in line
            assert f"cost={record.cost:.6g}" in line

    def test_cache_hits_are_labelled(self, tmp_path):
        import io

        cache = ResultCache(str(tmp_path / "cache"))
        run_sweep(SMALL, cache=cache)
        buf = io.StringIO()
        run_sweep(SMALL, cache=cache, verbose=True, progress_stream=buf)
        lines = [ln for ln in buf.getvalue().splitlines() if ln]
        assert lines and all("cache hit" in ln for ln in lines)

    def test_quiet_by_default(self, capsys):
        run_sweep(SMALL)
        assert capsys.readouterr().err == ""

    def test_pool_progress_in_grid_order(self):
        import io

        buf = io.StringIO()
        result = run_sweep(SMALL, workers=2, verbose=True, progress_stream=buf)
        lines = [ln for ln in buf.getvalue().splitlines() if ln]
        assert len(lines) == len(result.records)
        for line, record in zip(lines, result.records):
            assert record.family in line


class TestAggregation:
    def test_table_renders_every_cell(self):
        result = run_sweep(E12_LIKE)
        table = result.to_table(title="t")
        for method in E12_LIKE.methods:
            assert method in table
        assert len(result.aggregate()) == len(E12_LIKE.methods)

    def test_to_dict_is_jsonable(self):
        import json

        payload = run_sweep(SMALL).to_dict()
        assert json.loads(json.dumps(payload)) == payload
