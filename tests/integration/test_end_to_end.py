"""Cross-module integration scenarios exercising the public API."""

import math

import pytest

from repro import (
    AffineCost,
    AwakeInterval,
    Job,
    ScheduleInstance,
    SuperlinearCost,
    TimeOfUseCost,
    UnavailabilityCost,
    prize_collecting_exact_value,
    prize_collecting_schedule,
    schedule_all_jobs,
)
from repro.scheduling.baselines import always_on_schedule
from repro.workloads.energy import tou_price_trace
from repro.workloads.jobs import random_multi_interval_instance


class TestTimeOfUseDatacenter:
    """Flexible batch jobs + diurnal electricity prices: the optimiser
    must push work into the cheap trough."""

    def make_instance(self):
        horizon = 24
        prices = tou_price_trace(horizon, base=1.0, peak_multiplier=5.0)
        # 6 batch jobs, each runnable any hour on either machine.
        jobs = [
            Job(
                f"batch{i}",
                frozenset((p, t) for p in ("m0", "m1") for t in range(horizon)),
            )
            for i in range(6)
        ]
        model = TimeOfUseCost(prices, restart_cost=0.5)
        return ScheduleInstance(["m0", "m1"], jobs, horizon, model), prices

    def test_work_lands_in_cheap_hours(self):
        inst, prices = self.make_instance()
        result = schedule_all_jobs(inst)
        result.schedule.validate(inst, require_all=True)
        threshold = prices.mean()
        cheap = sum(
            1 for (_, t) in result.schedule.assignment.values() if prices[t] <= threshold
        )
        assert cheap >= 5  # nearly all jobs in below-average-price hours

    def test_beats_always_on(self):
        inst, _ = self.make_instance()
        greedy = schedule_all_jobs(inst).cost
        naive = always_on_schedule(inst).cost(inst)
        assert greedy < naive / 3  # TOU peaks make always-on very costly


class TestUnavailabilityWindows:
    def test_jobs_routed_around_outage(self):
        # m0 is down during [2, 4]; both jobs must end up on m1 or
        # outside the outage window.
        blocked = [("m0", 2), ("m0", 3), ("m0", 4)]
        model = UnavailabilityCost(AffineCost(1.0), blocked)
        jobs = [
            Job("a", {("m0", 3), ("m1", 3)}),
            Job("b", {("m0", 2), ("m0", 6)}),
        ]
        inst = ScheduleInstance(["m0", "m1"], jobs, 8, model)
        result = schedule_all_jobs(inst)
        result.schedule.validate(inst, require_all=True)
        for job_id, (proc, t) in result.schedule.assignment.items():
            assert (proc, t) not in set(blocked)


class TestSuperlinearFanCosts:
    def test_long_runs_get_split(self):
        # Six jobs spread across 18 slots, quadratic energy in length:
        # several short awake runs must beat one long one.
        jobs = [Job(f"j{i}", {("p", 3 * i)}) for i in range(6)]
        inst = ScheduleInstance(["p"], jobs, 18, SuperlinearCost(1.0, 2.0))
        result = schedule_all_jobs(inst)
        result.schedule.validate(inst, require_all=True)
        spanning_cost = SuperlinearCost(1.0, 2.0)(AwakeInterval("p", 0, 15))
        assert result.cost < spanning_cost


class TestPrizeCollectingPipeline:
    def test_thresholds_and_costs_consistent(self):
        inst = random_multi_interval_instance(
            10, 2, 16, value_spread=4.0, rng=5
        )
        total = inst.total_value()
        half = prize_collecting_schedule(inst, 0.5 * total, 0.25)
        exact = prize_collecting_exact_value(inst, 0.5 * total)
        assert exact.value >= 0.5 * total - 1e-9
        assert half.value >= 0.75 * 0.5 * total - 1e-9
        # More value must not be cheaper than the bicriteria relaxation
        # by more than float noise (same greedy prefix).
        assert exact.cost >= half.cost - 1e-9

    def test_schedule_all_equals_prize_collecting_at_full_value(self):
        inst = random_multi_interval_instance(8, 2, 14, rng=6)
        full = schedule_all_jobs(inst)
        pc = prize_collecting_exact_value(inst, inst.total_value())
        assert pc.value == pytest.approx(inst.total_value())
        assert len(pc.schedule.assignment) == inst.n_jobs
        # Both are feasible full schedules; costs should be comparable
        # (identical utilities up to weighting), allow slack for ties.
        assert pc.cost <= full.cost * 2 + 1e-9


class TestScaleSmoke:
    def test_moderate_scale_instance_solves(self):
        inst = random_multi_interval_instance(40, 4, 60, rng=9)
        result = schedule_all_jobs(inst)
        result.schedule.validate(inst, require_all=True)
        assert result.greedy.utility == 40.0

    def test_methods_scale_consistently(self):
        inst = random_multi_interval_instance(15, 3, 24, rng=10)
        costs = {
            m: schedule_all_jobs(inst, method=m).cost
            for m in ("incremental", "lazy", "plain")
        }
        assert max(costs.values()) <= min(costs.values()) + 1e-9
