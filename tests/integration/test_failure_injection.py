"""Failure injection: misbehaving oracles, poisoned costs, corrupted state.

Production code meets broken inputs; these tests pin down *how* the
library fails — loudly, early, and with the library's own exception
types — instead of silently producing wrong schedules.
"""

import math

import pytest

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import CoverageFunction
from repro.core.lazy import lazy_budgeted_greedy
from repro.core.submodular import LambdaSetFunction
from repro.errors import InfeasibleError, InvalidInstanceError, OracleError
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost, CostModel, TableCost
from repro.scheduling.solver import schedule_all_jobs
from repro.secretary.stream import SecretaryStream
from repro.secretary.submodular_secretary import monotone_submodular_secretary


class ExplodingOracle(LambdaSetFunction):
    """Oracle that works for a while, then raises (flaky backend)."""

    def __init__(self, ground, fn, explode_after):
        super().__init__(ground, fn)
        self.remaining = explode_after

    def value(self, subset):
        self.remaining -= 1
        if self.remaining < 0:
            raise RuntimeError("backend oracle disappeared")
        return super().value(subset)


class TestOracleFailures:
    def test_exploding_oracle_propagates(self):
        covers = {f"s{i}": {i} for i in range(6)}
        base = CoverageFunction(covers)
        oracle = ExplodingOracle(base.ground_set, base.value, explode_after=3)
        inst = BudgetedInstance(
            oracle, {k: frozenset({k}) for k in covers}, {k: 1.0 for k in covers}
        )
        with pytest.raises(RuntimeError, match="backend oracle disappeared"):
            budgeted_greedy(inst, target=6.0, epsilon=0.1)

    def test_exploding_oracle_propagates_through_lazy(self):
        covers = {f"s{i}": {i} for i in range(6)}
        base = CoverageFunction(covers)
        oracle = ExplodingOracle(base.ground_set, base.value, explode_after=3)
        inst = BudgetedInstance(
            oracle, {k: frozenset({k}) for k in covers}, {k: 1.0 for k in covers}
        )
        with pytest.raises(RuntimeError):
            lazy_budgeted_greedy(inst, target=6.0, epsilon=0.1)

    def test_negative_empty_utility_rejected(self):
        fn = LambdaSetFunction({1}, lambda s: -1.0 if not s else 1.0)
        inst = BudgetedInstance(fn, {1: frozenset({1})}, {1: 1.0})
        with pytest.raises(InvalidInstanceError):
            budgeted_greedy(inst, target=1.0, epsilon=0.5)

    def test_peeking_algorithm_caught_by_stream(self):
        # An "algorithm" that queries the whole ground set up front is
        # rejected by the ArrivalOracle before it can cheat.
        fn = CoverageFunction({f"s{i}": {i} for i in range(5)})
        stream = SecretaryStream(fn, rng=0)
        with pytest.raises(OracleError):
            stream.oracle.value(fn.ground_set)


class TestPoisonedCosts:
    def test_negative_cost_model_rejected_at_solve(self):
        class Negative(CostModel):
            def cost(self, interval):
                return -5.0

        jobs = [Job("a", {("p", 0)})]
        inst = ScheduleInstance(["p"], jobs, 2, Negative())
        with pytest.raises(InvalidInstanceError):
            schedule_all_jobs(inst)

    def test_nan_costs_do_not_produce_a_schedule_silently(self):
        class NaN(CostModel):
            def cost(self, interval):
                return math.nan

        jobs = [Job("a", {("p", 0)})]
        inst = ScheduleInstance(["p"], jobs, 2, NaN())
        # NaN ratios never compare greater, so the greedy finds no
        # usable interval and reports infeasibility rather than a bogus
        # schedule.
        with pytest.raises(InfeasibleError):
            schedule_all_jobs(inst)

    def test_all_infinite_costs_infeasible(self):
        jobs = [Job("a", {("p", 0)})]
        inst = ScheduleInstance(
            ["p"], jobs, 2, TableCost({}),
            candidate_intervals=[AwakeInterval("p", 0, 0)],
        )
        with pytest.raises(InfeasibleError):
            schedule_all_jobs(inst)


class TestCorruptedArtifacts:
    def test_tampered_schedule_rejected(self):
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 1)})]
        inst = ScheduleInstance(["p"], jobs, 3, AffineCost(1.0))
        result = schedule_all_jobs(inst)
        # Corrupt the assignment post-hoc.
        result.schedule.assignment["a"] = ("p", 2)
        with pytest.raises(InvalidInstanceError):
            result.schedule.validate(inst)

    def test_dropped_interval_rejected(self):
        jobs = [Job("a", {("p", 0)})]
        inst = ScheduleInstance(["p"], jobs, 2, AffineCost(1.0))
        result = schedule_all_jobs(inst)
        result.schedule.intervals.clear()
        with pytest.raises(InvalidInstanceError):
            result.schedule.validate(inst)


class TestSecretaryEdgeCases:
    def test_singleton_stream(self):
        fn = CoverageFunction({"only": {1}})
        stream = SecretaryStream(fn, rng=0)
        result = monotone_submodular_secretary(stream, 1)
        # With no observation window (length 1), the single element is
        # hired — the clamped threshold equals the current value.
        assert result.selected == frozenset({"only"})

    def test_k_exceeding_n(self):
        fn = CoverageFunction({f"s{i}": {i} for i in range(3)})
        stream = SecretaryStream(fn, rng=1)
        result = monotone_submodular_secretary(stream, 10)
        assert result.hires <= 3
