"""Randomized verification of every proven guarantee (theorem sweep).

Each test class mirrors one theorem; together they are the in-CI version
of the EXPERIMENTS.md tables (the benchmarks print the full sweeps).
"""

import math

import pytest

from repro.core.budgeted import BudgetedInstance, budgeted_greedy
from repro.core.functions import CoverageFunction
from repro.rng import as_generator
from repro.scheduling.exact import (
    optimal_prize_collecting_bruteforce,
    optimal_schedule_bruteforce,
)
from repro.scheduling.prize_collecting import prize_collecting_schedule
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import small_certifiable_instance


class TestLemma212:
    """Bicriteria ((1-eps), 2*log2(1/eps)) on instances with known OPT."""

    def planted(self, seed, n_items=20, n_opt=4, n_noise=10):
        gen = as_generator(seed)
        covers = {}
        costs = {}
        # Planted optimal cover: n_opt unit-cost sets partitioning U.
        bounds = sorted(gen.choice(range(1, n_items), size=n_opt - 1, replace=False))
        prev = 0
        for i, b in enumerate(list(bounds) + [n_items]):
            covers[f"opt{i}"] = set(range(prev, b))
            costs[f"opt{i}"] = 1.0
            prev = b
        for i in range(n_noise):
            mask = gen.random(n_items) < 0.25
            covers[f"noise{i}"] = {j for j in range(n_items) if mask[j]} or {0}
            costs[f"noise{i}"] = float(0.8 + gen.random())
        return BudgetedInstance(
            CoverageFunction(covers),
            {k: frozenset({k}) for k in covers},
            costs,
        ), n_items, float(n_opt)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("eps", [0.5, 0.25, 0.1])
    def test_utility_and_cost(self, seed, eps):
        inst, n, opt_cost = self.planted(seed)
        result = budgeted_greedy(inst, target=float(n), epsilon=eps)
        assert result.utility >= (1 - eps) * n - 1e-9
        bound = 2.0 * math.log2(1.0 / eps) + 2.0  # ceil(log) phases
        assert result.cost <= bound * opt_cost + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_per_phase_cost_bounded(self, seed):
        # The proof charges each phase at most 2B; check it empirically.
        inst, n, opt_cost = self.planted(seed)
        result = budgeted_greedy(inst, target=float(n), epsilon=1.0 / (n + 1))
        for phase, cost in result.cost_by_phase().items():
            assert cost <= 2.0 * opt_cost + 1e-9


class TestTheorem221:
    """Schedule-all within 2*log2(n+1) of the certified optimum."""

    @pytest.mark.parametrize("seed", range(12))
    def test_ratio(self, seed):
        inst = small_certifiable_instance(
            n_jobs=7, n_processors=2, horizon=16, n_candidate_intervals=13, rng=seed
        )
        opt = optimal_schedule_bruteforce(inst).cost
        got = schedule_all_jobs(inst).cost
        assert got <= 2.0 * math.log2(inst.n_jobs + 1) * opt + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_ratio_is_usually_small_in_practice(self, seed):
        inst = small_certifiable_instance(
            n_jobs=6, n_processors=2, horizon=14, n_candidate_intervals=12, rng=seed + 30
        )
        opt = optimal_schedule_bruteforce(inst).cost
        got = schedule_all_jobs(inst).cost
        # Not a theorem — an empirical observation the paper's O(log n)
        # analysis leaves room for: greedy is near-optimal on random
        # instances. Guard loosely to catch regressions.
        assert got <= 2.0 * opt + 1e-9


class TestTheorem231:
    """Prize-collecting bicriteria on certified instances."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("eps", [0.5, 0.25])
    def test_value_and_cost(self, seed, eps):
        inst = small_certifiable_instance(
            n_jobs=6, n_processors=2, horizon=14, n_candidate_intervals=11,
            value_spread=3.0, rng=seed,
        )
        target = 0.6 * inst.total_value()
        opt = optimal_prize_collecting_bruteforce(inst, target).cost
        result = prize_collecting_schedule(inst, target, eps)
        assert result.value >= (1 - eps) * target - 1e-9
        bound = 2.0 * math.log2(1.0 / eps) + 2.0
        assert result.cost <= bound * opt + 1e-9
