"""Regression-guard the shipped examples: each must run clean.

Examples are documentation that executes; a broken example is a broken
README.  Each one runs in-process (importing as a module and calling
``main``) so failures surface as normal test failures with tracebacks.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name, capsys):
    module = load_example(name)
    assert hasattr(module, "main"), f"example {name} must define main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"


def test_expected_examples_present():
    # The deliverable list: one quickstart plus domain scenarios.
    assert "quickstart" in EXAMPLES
    assert len(EXAMPLES) >= 3
