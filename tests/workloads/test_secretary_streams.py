"""Secretary utility generators."""

import pytest

from repro.core.submodular import check_monotone, check_submodular
from repro.errors import InvalidInstanceError
from repro.workloads.secretary_streams import (
    additive_values,
    coverage_utility,
    cut_utility,
    facility_utility,
)


class TestAdditive:
    def test_size_and_values_match(self):
        fn, values = additive_values(30, rng=0)
        assert len(fn.ground_set) == 30
        for e, v in values.items():
            assert fn({e}) == pytest.approx(v)

    def test_lognormal_heavy_tail(self):
        _, values = additive_values(500, distribution="lognormal", rng=1)
        vals = sorted(values.values())
        assert vals[-1] > 4 * (sum(vals) / len(vals))  # heavy tail present

    def test_unknown_distribution(self):
        with pytest.raises(InvalidInstanceError):
            additive_values(5, distribution="cauchy")

    def test_determinism(self):
        _, a = additive_values(10, rng=3)
        _, b = additive_values(10, rng=3)
        assert a == b


class TestCoverage:
    def test_ground_size(self):
        fn = coverage_utility(25, 10, rng=0)
        assert len(fn.ground_set) == 25

    def test_every_secretary_covers_something(self):
        fn = coverage_utility(25, 10, rng=1)
        for e in fn.ground_set:
            assert fn({e}) >= 1.0

    def test_submodular(self):
        fn = coverage_utility(7, 6, rng=2)
        assert check_submodular(fn)
        assert check_monotone(fn)

    def test_bad_parameters(self):
        with pytest.raises(InvalidInstanceError):
            coverage_utility(0, 5)


class TestFacility:
    def test_submodular(self):
        fn = facility_utility(6, 5, rng=0)
        assert check_submodular(fn)

    def test_bad_parameters(self):
        with pytest.raises(InvalidInstanceError):
            facility_utility(3, 0)


class TestCut:
    def test_submodular_nonmonotone(self):
        fn = cut_utility(7, rng=0)
        assert check_submodular(fn)

    def test_full_set_cut_is_zero(self):
        fn = cut_utility(10, rng=1)
        assert fn(fn.ground_set) == 0.0

    def test_edge_probability_extremes(self):
        empty = cut_utility(8, edge_probability=0.0, rng=2)
        assert empty({"s0"}) == 0.0
        dense = cut_utility(8, edge_probability=1.0, rng=3)
        assert dense({"s0"}) > 0.0

    def test_bad_parameters(self):
        with pytest.raises(InvalidInstanceError):
            cut_utility(5, edge_probability=2.0)
