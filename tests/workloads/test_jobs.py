"""Workload generators: feasibility guarantees and parameter validation."""

import pytest

from repro.errors import InvalidInstanceError
from repro.matching.hopcroft_karp import hopcroft_karp
from repro.scheduling.power import SuperlinearCost
from repro.workloads.jobs import (
    bursty_arrival_instance,
    bursty_instance,
    heterogeneous_energy_instance,
    random_multi_interval_instance,
    small_certifiable_instance,
)


def feasible(instance):
    return len(hopcroft_karp(instance.bipartite_graph())) == instance.n_jobs


class TestRandomMultiInterval:
    @pytest.mark.parametrize("seed", range(10))
    def test_always_feasible(self, seed):
        inst = random_multi_interval_instance(12, 3, 20, rng=seed)
        assert feasible(inst)

    def test_shape(self):
        inst = random_multi_interval_instance(8, 2, 15, rng=0)
        assert inst.n_jobs == 8
        assert len(inst.processors) == 2
        assert inst.horizon == 15

    def test_value_spread(self):
        inst = random_multi_interval_instance(30, 2, 20, value_spread=5.0, rng=1)
        values = [j.value for j in inst.jobs]
        assert min(values) >= 1.0
        assert max(values) <= 5.0
        assert max(values) > min(values)

    def test_unit_values_by_default(self):
        inst = random_multi_interval_instance(5, 2, 10, rng=2)
        assert all(j.value == 1.0 for j in inst.jobs)

    def test_custom_cost_model(self):
        inst = random_multi_interval_instance(
            5, 2, 10, cost_model=SuperlinearCost(1.0, 2.0), rng=3
        )
        assert isinstance(inst.cost_model, SuperlinearCost)

    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_multi_interval_instance(0, 1, 10)
        with pytest.raises(InvalidInstanceError):
            random_multi_interval_instance(3, 1, 5, window_length=9)

    def test_determinism(self):
        a = random_multi_interval_instance(6, 2, 12, rng=7)
        b = random_multi_interval_instance(6, 2, 12, rng=7)
        assert [j.slots for j in a.jobs] == [j.slots for j in b.jobs]


class TestBursty:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_feasible(self, seed):
        inst = bursty_instance(9, 3, 30, rng=seed)
        assert feasible(inst)

    def test_jobs_confined_to_bursts(self):
        inst = bursty_instance(6, 2, 40, n_bursts=2, burst_width=3, rng=0)
        for job in inst.jobs:
            times = sorted({t for _, t in job.slots})
            assert times[-1] - times[0] < 3

    def test_capacity_check(self):
        with pytest.raises(InvalidInstanceError):
            bursty_instance(50, 1, 30, n_bursts=1, burst_width=3)

    def test_bad_parameters(self):
        with pytest.raises(InvalidInstanceError):
            bursty_instance(4, 2, 10, burst_width=0)
        with pytest.raises(InvalidInstanceError):
            bursty_instance(4, 2, 10, burst_width=20)


class TestSmallCertifiable:
    @pytest.mark.parametrize("seed", range(8))
    def test_feasible_within_candidates(self, seed):
        inst = small_certifiable_instance(6, 2, 14, 12, rng=seed)
        assert feasible(inst)
        # All job slots lie inside the candidate pool.
        pool_slots = set()
        for iv in inst.candidates():
            pool_slots |= iv.slots()
        for job in inst.jobs:
            assert set(job.slots) <= pool_slots

    def test_pool_size(self):
        inst = small_certifiable_instance(5, 2, 12, 9, rng=0)
        assert len(inst.candidates()) == 9

    def test_too_many_jobs_rejected(self):
        with pytest.raises(InvalidInstanceError):
            small_certifiable_instance(100, 1, 10, 3, rng=0)

    def test_bad_length_range_rejected(self):
        with pytest.raises(InvalidInstanceError):
            small_certifiable_instance(3, 1, 10, 5, interval_length_range=(4, 2))

    def test_value_spread_applied(self):
        inst = small_certifiable_instance(6, 2, 14, 12, value_spread=3.0, rng=1)
        values = [j.value for j in inst.jobs]
        assert max(values) > min(values)


class TestBurstyArrival:
    @pytest.mark.parametrize("seed", range(8))
    def test_always_feasible(self, seed):
        inst = bursty_arrival_instance(14, 3, 30, rng=seed)
        assert feasible(inst)

    def test_windows_are_contiguous_per_processor(self):
        inst = bursty_arrival_instance(10, 3, 24, service_window=4, rng=0)
        # Repair may add one private slot; every job still has some
        # processor with a contiguous run of valid times.
        for job in inst.jobs:
            runs = []
            for proc in job.processors():
                times = job.times_on(proc)
                runs.append(all(b - a == 1 for a, b in zip(times, times[1:])))
            assert any(runs)

    def test_processors_per_job_respected(self):
        inst = bursty_arrival_instance(
            12, 4, 30, processors_per_job=2, rng=3
        )
        # At most 2 drawn processors plus possibly one repair processor.
        for job in inst.jobs:
            assert len(job.processors()) <= 3

    def test_deterministic_under_seed(self):
        a = bursty_arrival_instance(10, 3, 24, rng=7)
        b = bursty_arrival_instance(10, 3, 24, rng=7)
        assert [(j.id, j.slots) for j in a.jobs] == [(j.id, j.slots) for j in b.jobs]

    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidInstanceError):
            bursty_arrival_instance(0, 2, 10)
        with pytest.raises(InvalidInstanceError):
            bursty_arrival_instance(4, 2, 10, service_window=0)
        with pytest.raises(InvalidInstanceError):
            bursty_arrival_instance(4, 2, 10, service_window=11)


class TestHeterogeneousEnergy:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_feasible(self, seed):
        inst = heterogeneous_energy_instance(10, 3, 20, rng=seed)
        assert feasible(inst)

    def test_cost_model_is_per_processor(self):
        from repro.scheduling.intervals import AwakeInterval
        from repro.scheduling.power import PerProcessorRateCost

        inst = heterogeneous_energy_instance(8, 3, 20, efficiency_spread=8.0, rng=1)
        assert isinstance(inst.cost_model, PerProcessorRateCost)
        costs = {p: inst.cost_of(AwakeInterval(p, 0, 4)) for p in inst.processors}
        assert len(set(costs.values())) > 1  # the fleet is actually heterogeneous

    def test_deterministic_under_seed(self):
        a = heterogeneous_energy_instance(8, 3, 20, rng=5)
        b = heterogeneous_energy_instance(8, 3, 20, rng=5)
        assert a.cost_model.rates == b.cost_model.rates
        assert [(j.id, j.slots) for j in a.jobs] == [(j.id, j.slots) for j in b.jobs]
