"""Energy price trace generators."""

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import TimeOfUseCost
from repro.workloads.energy import spot_market_trace, tou_price_trace


class TestTouTrace:
    def test_shape_and_bounds(self):
        prices = tou_price_trace(48, base=1.0, peak_multiplier=3.0)
        assert prices.shape == (48,)
        assert prices.min() >= 1.0 - 1e-9
        assert prices.max() <= 3.0 + 1e-9

    def test_trough_at_start(self):
        prices = tou_price_trace(48, base=1.0, peak_multiplier=3.0)
        assert prices[0] == pytest.approx(1.0)
        assert prices[24] == pytest.approx(3.0)

    def test_noise_keeps_nonnegative(self):
        prices = tou_price_trace(48, noise=0.9, rng=0)
        assert (prices >= 0).all()

    def test_noise_determinism(self):
        a = tou_price_trace(24, noise=0.2, rng=5)
        b = tou_price_trace(24, noise=0.2, rng=5)
        assert np.allclose(a, b)

    def test_bad_parameters(self):
        with pytest.raises(InvalidInstanceError):
            tou_price_trace(0)
        with pytest.raises(InvalidInstanceError):
            tou_price_trace(10, peak_multiplier=0.5)

    def test_feeds_time_of_use_cost(self):
        prices = tou_price_trace(24)
        model = TimeOfUseCost(prices, restart_cost=1.0)
        peak = model(AwakeInterval("p", 11, 13))
        trough = model(AwakeInterval("p", 0, 2))
        assert peak > trough


class TestSpotTrace:
    def test_base_price(self):
        prices = spot_market_trace(50, base=2.0, spike_probability=0.0)
        assert np.allclose(prices, 2.0)

    def test_spikes_present(self):
        prices = spot_market_trace(400, spike_probability=0.2, spike_multiplier=10.0, rng=1)
        assert (prices > 5.0).any()
        assert (prices == 1.0).any()

    def test_all_spike(self):
        prices = spot_market_trace(20, spike_probability=1.0, spike_multiplier=3.0, rng=2)
        assert np.allclose(prices, 3.0)

    def test_bad_parameters(self):
        with pytest.raises(InvalidInstanceError):
            spot_market_trace(0)
        with pytest.raises(InvalidInstanceError):
            spot_market_trace(10, spike_probability=1.5)


class TestHeterogeneousFleetRates:
    def test_shapes_and_ranges(self):
        from repro.workloads.energy import heterogeneous_fleet_rates

        procs = [f"P{i}" for i in range(6)]
        rates, restarts = heterogeneous_fleet_rates(
            procs, efficiency_spread=4.0, restart_range=(1.0, 4.0), rng=0
        )
        assert set(rates) == set(procs) == set(restarts)
        assert all(1.0 <= r <= 4.0 for r in rates.values())
        assert all(1.0 <= c <= 4.0 for c in restarts.values())

    def test_spread_one_is_homogeneous(self):
        from repro.workloads.energy import heterogeneous_fleet_rates

        rates, _ = heterogeneous_fleet_rates(["a", "b"], efficiency_spread=1.0, rng=0)
        assert set(rates.values()) == {1.0}

    def test_bad_parameters(self):
        from repro.workloads.energy import heterogeneous_fleet_rates

        with pytest.raises(InvalidInstanceError):
            heterogeneous_fleet_rates(["a"], efficiency_spread=0.5)
        with pytest.raises(InvalidInstanceError):
            heterogeneous_fleet_rates(["a"], restart_range=(3.0, 1.0))
