"""JSON interchange: round-trips for every cost model, errors on junk."""

import json
import math

import pytest

from repro.errors import InvalidInstanceError
from repro.io import (
    dump_instance,
    dump_json_atomic,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import (
    AffineCost,
    PerProcessorRateCost,
    SuperlinearCost,
    TableCost,
    TimeOfUseCost,
    UnavailabilityCost,
)
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import random_multi_interval_instance


def roundtrip(instance):
    return instance_from_dict(json.loads(json.dumps(instance_to_dict(instance))))


def sample_jobs():
    return [
        Job("a", {("p0", 0), ("p1", 2)}, value=2.0),
        Job("b", {("p0", 3)}),
    ]


COST_MODELS = [
    AffineCost(2.0, rate=1.5),
    PerProcessorRateCost({"p0": 1.0, "p1": 2.0}, {"p0": 0.5, "p1": 3.0}),
    TimeOfUseCost([1, 2, 3, 4], restart_cost=0.5, per_processor_prices={"p1": [4, 3, 2, 1]}),
    SuperlinearCost(1.0, 2.0, scale=0.5),
    TableCost({AwakeInterval("p0", 0, 3): 5.0}, default=9.0),
    UnavailabilityCost(AffineCost(1.0), [("p0", 1), ("p1", 2)]),
]


class TestInstanceRoundTrip:
    @pytest.mark.parametrize("model", COST_MODELS, ids=lambda m: type(m).__name__)
    def test_cost_model_roundtrip(self, model):
        inst = ScheduleInstance(["p0", "p1"], sample_jobs(), 4, model)
        back = roundtrip(inst)
        # Cost oracles agree on every candidate interval.
        for proc in ("p0", "p1"):
            for s in range(4):
                for e in range(s, 4):
                    iv = AwakeInterval(proc, s, e)
                    a, b = inst.cost_of(iv), back.cost_of(iv)
                    assert (math.isinf(a) and math.isinf(b)) or a == pytest.approx(b)

    def test_jobs_preserved(self):
        inst = ScheduleInstance(["p0", "p1"], sample_jobs(), 4, AffineCost(1.0))
        back = roundtrip(inst)
        assert {j.id for j in back.jobs} == {"a", "b"}
        assert back.job_by_id("a").value == 2.0
        assert back.job_by_id("a").slots == frozenset({("p0", 0), ("p1", 2)})

    def test_candidates_preserved(self):
        pool = [AwakeInterval("p0", 0, 1), AwakeInterval("p1", 2, 3)]
        inst = ScheduleInstance(
            ["p0", "p1"], sample_jobs(), 4, AffineCost(1.0), candidate_intervals=pool
        )
        back = roundtrip(inst)
        assert sorted(back.candidates()) == sorted(pool)

    def test_solutions_agree_after_roundtrip(self):
        inst = random_multi_interval_instance(8, 2, 12, rng=3)
        back = roundtrip(inst)
        assert schedule_all_jobs(inst).cost == pytest.approx(
            schedule_all_jobs(back).cost
        )

    def test_wrong_format_rejected(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_dict({"format": "bogus/9"})

    def test_unknown_cost_kind_rejected(self):
        data = instance_to_dict(
            ScheduleInstance(["p0"], [], 2, AffineCost(1.0))
        )
        data["cost_model"] = {"kind": "quantum"}
        with pytest.raises(InvalidInstanceError):
            instance_from_dict(data)


class TestScheduleRoundTrip:
    def test_roundtrip(self):
        inst = random_multi_interval_instance(6, 2, 10, rng=1)
        sched = schedule_all_jobs(inst).schedule
        back = schedule_from_dict(json.loads(json.dumps(schedule_to_dict(sched))))
        assert sorted(back.intervals) == sorted(sched.intervals)
        assert back.assignment == {str(k): v for k, v in sched.assignment.items()}
        back.validate(inst, require_all=True)

    def test_wrong_format_rejected(self):
        with pytest.raises(InvalidInstanceError):
            schedule_from_dict({"format": "nope"})


class TestFileHelpers:
    def test_dump_and_load(self, tmp_path):
        inst = random_multi_interval_instance(5, 2, 8, rng=2)
        path = tmp_path / "inst.json"
        dump_instance(inst, str(path))
        back = load_instance(str(path))
        assert back.n_jobs == 5
        assert schedule_all_jobs(back).cost == pytest.approx(
            schedule_all_jobs(inst).cost
        )


class TestAtomicJsonDump:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "ck.json"
        dump_json_atomic({"v": 1}, str(path))
        assert json.loads(path.read_text()) == {"v": 1}
        dump_json_atomic({"v": 2}, str(path))
        assert json.loads(path.read_text()) == {"v": 2}
        assert list(tmp_path.iterdir()) == [path]  # no stray temp files

    def test_failed_write_leaves_previous_file_intact(self, tmp_path):
        """Kill-mid-write recovery: the old checkpoint survives.

        A serialisation failure part-way through (stand-in for a crash
        mid-write: the temp file holds a JSON prefix) must neither
        truncate nor replace the existing payload, and must clean up
        its temp file.
        """
        path = tmp_path / "ck.json"
        dump_json_atomic({"cursor": 7}, str(path))
        with pytest.raises(TypeError):
            dump_json_atomic({"cursor": 8, "bad": object()}, str(path))
        assert json.loads(path.read_text()) == {"cursor": 7}
        assert list(tmp_path.iterdir()) == [path]
