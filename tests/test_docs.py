"""Docs-as-tests: the committed docs must track the code they describe.

The README's CLI reference is generated from ``repro.cli.build_parser()``
by ``scripts/gen_cli_reference.py``; CI runs the same ``--check`` in the
lint job, but keeping it in tier-1 means local ``pytest`` catches the
drift before a push does.
"""

import importlib.util
import os

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GENERATOR = os.path.join(REPO_ROOT, "scripts", "gen_cli_reference.py")
README = os.path.join(REPO_ROOT, "README.md")
DOCS = os.path.join(REPO_ROOT, "docs")


def _load_generator():
    spec = importlib.util.spec_from_file_location("gen_cli_reference", GENERATOR)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCliReferenceDrift:
    def test_readme_matches_generated_reference(self):
        gen = _load_generator()
        with open(README, "r", encoding="utf-8") as fh:
            current = fh.read()
        assert gen.spliced_readme(current) == current, (
            "README CLI reference is stale; run "
            "`python scripts/gen_cli_reference.py` and commit the result"
        )

    def test_check_mode_reports_drift(self, tmp_path, capsys):
        gen = _load_generator()
        stale = tmp_path / "README.md"
        stale.write_text(
            "intro\n\n" + gen.BEGIN + "\nstale text\n" + gen.END + "\ntail\n",
            encoding="utf-8",
        )
        assert gen.main(["--check", "--readme", str(stale)]) == 1
        assert "drift" in capsys.readouterr().err

    def test_check_mode_passes_after_regeneration(self, tmp_path, capsys):
        gen = _load_generator()
        readme = tmp_path / "README.md"
        readme.write_text(
            "intro\n\n" + gen.BEGIN + "\nstale\n" + gen.END + "\n",
            encoding="utf-8",
        )
        assert gen.main(["--readme", str(readme)]) == 0
        assert gen.main(["--check", "--readme", str(readme)]) == 0

    def test_missing_markers_fail_loudly(self, tmp_path):
        gen = _load_generator()
        readme = tmp_path / "README.md"
        readme.write_text("no markers here\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            gen.main(["--check", "--readme", str(readme)])


class TestOnlineDocstringCoverage:
    """Mirror of the ruff ``D1`` gate scoped to ``repro.online``.

    CI enforces pydocstyle via ruff (see ``[tool.ruff.lint]``); this
    test applies the same missing-docstring contract with a stdlib AST
    walk so environments without ruff catch regressions too.  Exempt,
    as in the ruff config: private names, dunders (D105), ``__init__``
    (D107).
    """

    ONLINE = os.path.join(REPO_ROOT, "src", "repro", "online")

    def _missing(self, path):
        import ast

        with open(path, "r", encoding="utf-8") as fh:
            tree = ast.parse(fh.read(), path)
        missing = []
        if ast.get_docstring(tree) is None:
            missing.append(f"{path}:1 module")

        def walk(node, public, prefix=""):
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    name = child.name
                    pub = public and not name.startswith("_")
                    dunder = name.startswith("__") and name.endswith("__")
                    if pub and not dunder and ast.get_docstring(child) is None:
                        missing.append(f"{path}:{child.lineno} {prefix}{name}")
                    walk(child, pub, f"{prefix}{name}.")

        walk(tree, True)
        return missing

    def test_every_public_name_in_repro_online_has_a_docstring(self):
        missing = []
        for fname in sorted(os.listdir(self.ONLINE)):
            if fname.endswith(".py"):
                missing += self._missing(os.path.join(self.ONLINE, fname))
        assert not missing, "missing docstrings:\n" + "\n".join(missing)


class TestDocsTree:
    def test_architecture_doc_names_every_layer(self):
        with open(os.path.join(DOCS, "ARCHITECTURE.md"), encoding="utf-8") as fh:
            text = fh.read()
        for module in (
            "repro.online.arrivals",
            "repro.online.policies",
            "repro.online.driver",
            "repro.online.sharding",
            "repro.online.session",
            "repro.online.serving",
        ):
            assert module in text, f"ARCHITECTURE.md does not mention {module}"

    def test_reliability_doc_tracks_the_fault_constants(self):
        from repro.online.faults import (
            FAULT_PLAN_FORMAT,
            KILL_EXIT_CODE,
            KILL_SITES,
        )

        with open(os.path.join(DOCS, "RELIABILITY.md"), encoding="utf-8") as fh:
            text = fh.read()
        assert FAULT_PLAN_FORMAT in text
        assert str(KILL_EXIT_CODE) in text
        for site in KILL_SITES:
            assert site in text, f"RELIABILITY.md does not mention {site}"

    def test_architecture_doc_tracks_the_kernel_backend_constants(self):
        """The selection-rule constants in ARCHITECTURE.md are the code's.

        The doc states each constant as a power of two (e.g. ``2^26``);
        the pinned values here make a silent drift between prose and
        ``repro.core.kernels`` a test failure, not a doc bug.
        """
        from repro.core.kernels import (
            DENSE_CELL_LIMIT,
            DENSE_CELL_MIN,
            KERNEL_BACKENDS,
            POPCOUNT_TILE_BYTES,
            SPARSE_DENSITY_CUTOFF,
        )

        assert DENSE_CELL_LIMIT == 1 << 26
        assert DENSE_CELL_MIN == 1 << 21
        assert SPARSE_DENSITY_CUTOFF == 1.0 / 16.0
        assert POPCOUNT_TILE_BYTES == 1 << 18
        assert KERNEL_BACKENDS == ("auto", "dense", "sparse", "naive")
        with open(os.path.join(DOCS, "ARCHITECTURE.md"), encoding="utf-8") as fh:
            text = fh.read()
        assert "## Kernel backends" in text
        for token in (
            "DENSE_CELL_LIMIT` (= 2^26",
            "DENSE_CELL_MIN` (= 2^21",
            "cutoff = 1/16",
            "POPCOUNT_TILE_BYTES` (= 2^18",
        ):
            assert token in text, f"ARCHITECTURE.md selection rule lost {token!r}"

    def test_checkpoint_doc_tracks_the_codec_constants(self):
        from repro.online.checkpoint import (
            CHECKPOINT_FORMAT,
            CHECKPOINT_SCHEMA_VERSION,
            TENANT_CHECKPOINT_NAME,
        )
        from repro.online.sharding import SHARDED_CHECKPOINT_FORMAT

        with open(
            os.path.join(DOCS, "CHECKPOINT_FORMAT.md"), encoding="utf-8"
        ) as fh:
            text = fh.read()
        assert CHECKPOINT_FORMAT in text
        assert SHARDED_CHECKPOINT_FORMAT in text
        assert TENANT_CHECKPOINT_NAME in text
        assert f"`{CHECKPOINT_SCHEMA_VERSION}` (current" in text

    def test_checkpoint_doc_tracks_the_manifest_versioning(self):
        """The sharded-manifest version story in the doc is the code's.

        Pinning the values here means bumping
        ``SHARDED_MANIFEST_SCHEMA_VERSION`` forces a deliberate rewrite
        of the reshard section in CHECKPOINT_FORMAT.md (and of this
        test), never a silent drift.
        """
        from repro.online.checkpoint import (
            SHARDED_MANIFEST_SCHEMA_VERSION,
            SUPPORTED_MANIFEST_VERSIONS,
        )

        assert SHARDED_MANIFEST_SCHEMA_VERSION == 3
        assert SUPPORTED_MANIFEST_VERSIONS == (1, 2, 3)
        with open(
            os.path.join(DOCS, "CHECKPOINT_FORMAT.md"), encoding="utf-8"
        ) as fh:
            text = fh.read()
        assert "SHARDED_MANIFEST_SCHEMA_VERSION = 3" in text
        assert "SUPPORTED_MANIFEST_VERSIONS = (1, 2, 3)" in text
        assert "## Re-sharding" in text
        assert '"partition"' in text or "`partition`" in text
        with open(os.path.join(DOCS, "ARCHITECTURE.md"), encoding="utf-8") as fh:
            arch = fh.read()
        assert "## Elastic topology" in arch
        assert "PartitionMap" in arch
