"""Energy-cost models."""

import math

import numpy as np
import pytest

from repro.errors import InvalidInstanceError
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import (
    AffineCost,
    PerProcessorRateCost,
    SuperlinearCost,
    TableCost,
    TimeOfUseCost,
    UnavailabilityCost,
)


IV = AwakeInterval("p", 2, 5)  # length 4


class TestAffine:
    def test_formula(self):
        assert AffineCost(3.0)(IV) == 3.0 + 4.0
        assert AffineCost(3.0, rate=2.0)(IV) == 3.0 + 8.0

    def test_zero_restart(self):
        assert AffineCost(0.0)(AwakeInterval("p", 0, 0)) == 1.0

    def test_negative_params_rejected(self):
        with pytest.raises(InvalidInstanceError):
            AffineCost(-1.0)
        with pytest.raises(InvalidInstanceError):
            AffineCost(1.0, rate=-1.0)


class TestPerProcessorRate:
    def test_different_processors_differ(self):
        model = PerProcessorRateCost(
            rates={"p": 1.0, "q": 3.0}, restart_costs={"p": 2.0, "q": 0.5}
        )
        assert model(AwakeInterval("p", 0, 1)) == 2.0 + 2.0
        assert model(AwakeInterval("q", 0, 1)) == 0.5 + 6.0

    def test_unknown_processor_rejected(self):
        model = PerProcessorRateCost(rates={"p": 1.0}, restart_costs={"p": 0.0})
        with pytest.raises(InvalidInstanceError):
            model(AwakeInterval("zz", 0, 1))

    def test_negative_rejected(self):
        with pytest.raises(InvalidInstanceError):
            PerProcessorRateCost(rates={"p": -1.0}, restart_costs={"p": 0.0})


class TestTimeOfUse:
    def test_price_mass(self):
        model = TimeOfUseCost(prices=[1, 2, 3, 4, 5, 6], restart_cost=10.0)
        assert model(IV) == 10.0 + (3 + 4 + 5 + 6)

    def test_per_processor_prices(self):
        model = TimeOfUseCost(
            prices=[1, 1, 1],
            per_processor_prices={"q": [5, 5, 5]},
        )
        assert model(AwakeInterval("p", 0, 2)) == 3.0
        assert model(AwakeInterval("q", 0, 2)) == 15.0

    def test_interval_past_horizon_rejected(self):
        model = TimeOfUseCost(prices=[1, 1])
        with pytest.raises(InvalidInstanceError):
            model(AwakeInterval("p", 0, 5))

    def test_negative_prices_rejected(self):
        with pytest.raises(InvalidInstanceError):
            TimeOfUseCost(prices=[1, -1])

    def test_cumsum_matches_direct_sum(self):
        prices = np.arange(20, dtype=float)
        model = TimeOfUseCost(prices=prices)
        for s, e in [(0, 0), (3, 9), (0, 19), (18, 19)]:
            assert model(AwakeInterval("p", s, e)) == pytest.approx(prices[s : e + 1].sum())


class TestSuperlinear:
    def test_formula(self):
        model = SuperlinearCost(restart_cost=1.0, exponent=2.0)
        assert model(IV) == 1.0 + 16.0

    def test_splitting_becomes_attractive(self):
        # With exponent 2, two length-2 intervals (2*(a+4)) are cheaper
        # than one length-4 interval (a+16) once a < 8.
        model = SuperlinearCost(restart_cost=1.0, exponent=2.0)
        one = model(AwakeInterval("p", 0, 3))
        two = model(AwakeInterval("p", 0, 1)) + model(AwakeInterval("p", 2, 3))
        assert two < one

    def test_sublinear_rewards_merging(self):
        model = SuperlinearCost(restart_cost=1.0, exponent=0.5)
        one = model(AwakeInterval("p", 0, 3))
        two = model(AwakeInterval("p", 0, 1)) + model(AwakeInterval("p", 2, 3))
        assert one < two


class TestUnavailability:
    def test_blocked_interval_is_infinite(self):
        model = UnavailabilityCost(AffineCost(1.0), blocked=[("p", 3)])
        assert math.isinf(model(IV))

    def test_unblocked_passthrough(self):
        model = UnavailabilityCost(AffineCost(1.0), blocked=[("p", 9)])
        assert model(IV) == 5.0

    def test_other_processor_unaffected(self):
        model = UnavailabilityCost(AffineCost(1.0), blocked=[("q", 3)])
        assert model(IV) == 5.0


class TestTableCost:
    def test_listed_interval(self):
        model = TableCost({IV: 7.0})
        assert model(IV) == 7.0

    def test_unlisted_defaults_to_infinity(self):
        model = TableCost({IV: 7.0})
        assert math.isinf(model(AwakeInterval("p", 0, 0)))

    def test_custom_default(self):
        model = TableCost({}, default=2.5)
        assert model(IV) == 2.5

    def test_negative_cost_rejected(self):
        with pytest.raises(InvalidInstanceError):
            TableCost({IV: -1.0})


class TestCostModelContract:
    def test_negative_cost_model_caught_at_call(self):
        class Bad(AffineCost):
            def cost(self, interval):
                return -1.0

        with pytest.raises(InvalidInstanceError):
            Bad(0.0)(IV)
