"""AwakeInterval, merging, and candidate enumeration."""

import math

import pytest

from repro.errors import InvalidInstanceError
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import (
    AwakeInterval,
    enumerate_candidate_intervals,
    merge_intervals,
)
from repro.scheduling.power import AffineCost, UnavailabilityCost


class TestAwakeInterval:
    def test_length(self):
        assert AwakeInterval("p", 2, 2).length == 1
        assert AwakeInterval("p", 0, 4).length == 5

    def test_slots(self):
        iv = AwakeInterval("p", 1, 3)
        assert iv.slots() == frozenset({("p", 1), ("p", 2), ("p", 3)})

    def test_contains(self):
        iv = AwakeInterval("p", 1, 3)
        assert iv.contains(("p", 2))
        assert not iv.contains(("p", 4))
        assert not iv.contains(("q", 2))

    def test_overlap(self):
        a = AwakeInterval("p", 0, 3)
        assert a.overlaps(AwakeInterval("p", 3, 5))
        assert not a.overlaps(AwakeInterval("p", 4, 5))
        assert not a.overlaps(AwakeInterval("q", 0, 3))

    def test_invalid_ranges_rejected(self):
        with pytest.raises(InvalidInstanceError):
            AwakeInterval("p", -1, 2)
        with pytest.raises(InvalidInstanceError):
            AwakeInterval("p", 3, 2)

    def test_hashable_and_ordered(self):
        a, b = AwakeInterval("p", 0, 1), AwakeInterval("p", 0, 2)
        assert len({a, b, a}) == 2
        assert a < b


class TestMergeIntervals:
    def test_merges_overlapping(self):
        merged = merge_intervals([AwakeInterval("p", 0, 3), AwakeInterval("p", 2, 5)])
        assert merged == [AwakeInterval("p", 0, 5)]

    def test_merges_adjacent(self):
        merged = merge_intervals([AwakeInterval("p", 0, 2), AwakeInterval("p", 3, 4)])
        assert merged == [AwakeInterval("p", 0, 4)]

    def test_keeps_gaps(self):
        merged = merge_intervals([AwakeInterval("p", 0, 1), AwakeInterval("p", 5, 6)])
        assert len(merged) == 2

    def test_processors_independent(self):
        merged = merge_intervals(
            [AwakeInterval("p", 0, 3), AwakeInterval("q", 2, 5)]
        )
        assert len(merged) == 2

    def test_contained_interval_absorbed(self):
        merged = merge_intervals([AwakeInterval("p", 0, 9), AwakeInterval("p", 3, 4)])
        assert merged == [AwakeInterval("p", 0, 9)]


class TestEnumeration:
    def make_instance(self):
        jobs = [
            Job("a", {("p", 1), ("p", 5)}),
            Job("b", {("p", 3)}),
        ]
        return ScheduleInstance(["p"], jobs, 8, AffineCost(1.0))

    def test_event_points_only(self):
        cands = enumerate_candidate_intervals(self.make_instance())
        # Event times on p: 1, 3, 5 => 6 interval choices.
        assert len(cands) == 6
        assert AwakeInterval("p", 1, 5) in cands
        assert AwakeInterval("p", 3, 3) in cands

    def test_full_enumeration(self):
        cands = enumerate_candidate_intervals(
            self.make_instance(), event_points_only=False
        )
        assert len(cands) == 8 * 9 // 2  # all [s, e] pairs in an 8-slot horizon

    def test_max_length_cap(self):
        cands = enumerate_candidate_intervals(self.make_instance(), max_length=3)
        assert all(iv.length <= 3 for iv in cands)
        assert AwakeInterval("p", 1, 3) in cands
        assert AwakeInterval("p", 1, 5) not in cands

    def test_infinite_cost_intervals_dropped(self):
        jobs = [Job("a", {("p", 1), ("p", 5)})]
        model = UnavailabilityCost(AffineCost(1.0), blocked=[("p", 3)])
        inst = ScheduleInstance(["p"], jobs, 8, model)
        cands = enumerate_candidate_intervals(inst)
        assert AwakeInterval("p", 1, 5) not in cands  # spans the blocked slot
        assert AwakeInterval("p", 1, 1) in cands
        assert all(not math.isinf(inst.cost_of(iv)) for iv in cands)

    def test_multi_processor_events_separate(self):
        jobs = [Job("a", {("p", 1), ("q", 6)})]
        inst = ScheduleInstance(["p", "q"], jobs, 8, AffineCost(1.0))
        cands = enumerate_candidate_intervals(inst)
        assert cands == [AwakeInterval("p", 1, 1), AwakeInterval("q", 6, 6)]
