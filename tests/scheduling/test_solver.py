"""Theorem 2.2.1 solver: feasibility, method agreement, ratio bound."""

import math

import pytest

from repro.errors import InfeasibleError
from repro.scheduling.exact import optimal_schedule_bruteforce
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost, TableCost
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import small_certifiable_instance

METHODS = ["incremental", "plain", "lazy"]


def two_job_instance():
    jobs = [Job("a", {("p", 0), ("p", 3)}), Job("b", {("p", 1)})]
    return ScheduleInstance(["p"], jobs, 5, AffineCost(2.0))


class TestBasics:
    @pytest.mark.parametrize("method", METHODS)
    def test_schedules_all_jobs(self, method):
        inst = two_job_instance()
        result = schedule_all_jobs(inst, method=method)
        result.schedule.validate(inst, require_all=True)
        assert result.greedy.utility == 2.0

    @pytest.mark.parametrize("method", METHODS)
    def test_methods_agree_on_cost(self, method):
        inst = two_job_instance()
        baseline = schedule_all_jobs(inst, method="incremental").cost
        assert schedule_all_jobs(inst, method=method).cost == pytest.approx(baseline)

    def test_empty_instance(self):
        inst = ScheduleInstance(["p"], [], 4, AffineCost(1.0))
        result = schedule_all_jobs(inst)
        assert result.cost == 0.0
        assert result.schedule.intervals == []

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            schedule_all_jobs(two_job_instance(), method="zzz")

    def test_infeasible_raises(self):
        # Two jobs competing for the single same slot.
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 0)})]
        inst = ScheduleInstance(["p"], jobs, 2, AffineCost(1.0))
        with pytest.raises(InfeasibleError):
            schedule_all_jobs(inst)

    def test_no_candidates_raises(self):
        jobs = [Job("a", {("p", 0)})]
        inst = ScheduleInstance(
            ["p"], jobs, 2, TableCost({}),  # empty table: everything infinite
            candidate_intervals=[AwakeInterval("p", 0, 0)],
        )
        with pytest.raises(InfeasibleError):
            schedule_all_jobs(inst)


class TestSharingBehaviour:
    def test_one_interval_shared_by_clustered_jobs(self):
        # Three jobs in adjacent slots; restart cost makes one interval win.
        jobs = [Job(f"j{t}", {("p", t)}) for t in range(3)]
        inst = ScheduleInstance(["p"], jobs, 3, AffineCost(5.0))
        result = schedule_all_jobs(inst)
        assert len(result.schedule.awake_pattern()) == 1
        assert result.cost == 5.0 + 3.0

    def test_distant_jobs_split_when_cheap(self):
        # Restart alpha=1 but 10 idle slots between jobs: two intervals
        # (cost 2*(1+1)=4) beat one spanning interval (1+12=13).
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 11)})]
        inst = ScheduleInstance(["p"], jobs, 12, AffineCost(1.0))
        result = schedule_all_jobs(inst)
        assert result.cost == 4.0
        assert len(result.schedule.awake_pattern()) == 2

    def test_bridging_when_restart_expensive(self):
        # alpha=20: one interval (20+12=32) beats two restarts (2*21=42).
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 11)})]
        inst = ScheduleInstance(["p"], jobs, 12, AffineCost(20.0))
        result = schedule_all_jobs(inst)
        assert result.cost == 32.0
        assert len(result.schedule.awake_pattern()) == 1

    def test_multi_processor_distribution(self):
        jobs = [
            Job("a", {("p", 0)}),
            Job("b", {("p", 0), ("q", 0)}),
        ]
        inst = ScheduleInstance(["p", "q"], jobs, 1, AffineCost(1.0))
        result = schedule_all_jobs(inst)
        result.schedule.validate(inst, require_all=True)
        assert result.greedy.utility == 2.0


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(10))
    def test_cost_within_proven_bound_of_certified_optimum(self, seed):
        inst = small_certifiable_instance(
            n_jobs=6, n_processors=2, horizon=14, n_candidate_intervals=12, rng=seed
        )
        exact = optimal_schedule_bruteforce(inst)
        result = schedule_all_jobs(inst)
        n = inst.n_jobs
        bound = 2.0 * math.log2(n + 1)
        assert result.cost <= bound * exact.cost + 1e-9
        assert result.approximation_bound() == pytest.approx(bound)

    @pytest.mark.parametrize("seed", range(5))
    def test_all_methods_within_bound(self, seed):
        inst = small_certifiable_instance(
            n_jobs=5, n_processors=2, horizon=12, n_candidate_intervals=10, rng=seed + 100
        )
        exact = optimal_schedule_bruteforce(inst)
        bound = 2.0 * math.log2(inst.n_jobs + 1)
        for method in METHODS:
            result = schedule_all_jobs(inst, method=method)
            assert result.cost <= bound * exact.cost + 1e-9
            result.schedule.validate(inst, require_all=True)


class TestDiagnostics:
    def test_oracle_work_reported(self):
        inst = two_job_instance()
        result = schedule_all_jobs(inst, method="plain")
        assert result.oracle_work > 0

    def test_greedy_trace_consistent(self):
        inst = two_job_instance()
        result = schedule_all_jobs(inst)
        assert [s.index for s in result.greedy.steps] == result.greedy.chosen
        assert result.greedy.steps[-1].cost_after == pytest.approx(result.cost)
