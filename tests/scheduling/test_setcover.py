"""Set Cover: greedy guarantee and the Appendix .1 reduction."""

import pytest

from repro.errors import InfeasibleError, InvalidInstanceError
from repro.scheduling.setcover import (
    SetCoverInstance,
    greedy_set_cover,
    harmonic_number,
    random_set_cover_instance,
    set_cover_to_scheduling,
)
from repro.scheduling.solver import schedule_all_jobs


def tiny_instance():
    return SetCoverInstance(
        universe=frozenset({1, 2, 3, 4}),
        subsets={"a": frozenset({1, 2}), "b": frozenset({3, 4}), "c": frozenset({1, 2, 3, 4})},
        costs={"a": 1.0, "b": 1.0, "c": 3.0},
    )


class TestInstanceValidation:
    def test_valid(self):
        tiny_instance()

    def test_mismatched_costs_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(
                universe=frozenset({1}),
                subsets={"a": frozenset({1})},
                costs={"b": 1.0},
            )

    def test_uncoverable_universe_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(
                universe=frozenset({1, 2}),
                subsets={"a": frozenset({1})},
                costs={"a": 1.0},
            )

    def test_stray_elements_rejected(self):
        with pytest.raises(InvalidInstanceError):
            SetCoverInstance(
                universe=frozenset({1}),
                subsets={"a": frozenset({1, 99})},
                costs={"a": 1.0},
            )


class TestGreedySetCover:
    def test_covers_universe(self):
        result = greedy_set_cover(tiny_instance())
        covered = set()
        for name in result.chosen:
            covered |= tiny_instance().subsets[name]
        assert covered == set(tiny_instance().universe)

    def test_picks_cheap_pair(self):
        result = greedy_set_cover(tiny_instance())
        assert result.cost == 2.0

    def test_methods_agree(self):
        lazy = greedy_set_cover(tiny_instance(), method="lazy")
        plain = greedy_set_cover(tiny_instance(), method="plain")
        assert lazy.cost == plain.cost

    @pytest.mark.parametrize("seed", range(5))
    def test_harmonic_bound_on_planted_instances(self, seed):
        sc = random_set_cover_instance(
            40, 16, planted_cover_size=5, density=0.15, rng=seed
        )
        result = greedy_set_cover(sc)
        # Planted optimum costs exactly 5 (5 unit-cost sets).
        h = harmonic_number(40)
        assert result.cost <= 5.0 * h + 1e-9


class TestHarmonic:
    def test_values(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(3) == pytest.approx(1 + 0.5 + 1 / 3)


class TestReduction:
    def test_reduction_preserves_optimal_cost(self):
        sc = tiny_instance()
        inst = set_cover_to_scheduling(sc)
        result = schedule_all_jobs(inst)
        # The scheduling greedy on the reduced instance is the set-cover
        # greedy; its cost equals the greedy cover cost.
        assert result.cost == greedy_set_cover(sc).cost

    def test_reduced_instance_shape(self):
        sc = tiny_instance()
        inst = set_cover_to_scheduling(sc)
        assert set(inst.processors) == {"a", "b", "c"}
        assert inst.n_jobs == 4
        assert inst.horizon == 4
        # Exactly one candidate interval per processor.
        assert len(inst.candidates()) == 3

    def test_job_slots_follow_membership(self):
        sc = tiny_instance()
        inst = set_cover_to_scheduling(sc)
        job = inst.job_by_id(("job", 1))
        procs = {p for p, _ in job.slots}
        assert procs == {"a", "c"}

    def test_schedule_selects_a_cover(self):
        sc = tiny_instance()
        inst = set_cover_to_scheduling(sc)
        result = schedule_all_jobs(inst)
        chosen_sets = {iv.processor for iv in result.schedule.intervals}
        covered = set()
        for name in chosen_sets:
            covered |= sc.subsets[name]
        assert covered == set(sc.universe)


class TestRandomGenerator:
    def test_coverable(self):
        sc = random_set_cover_instance(25, 10, rng=0)
        union = set()
        for s in sc.subsets.values():
            union |= s
        assert union == set(sc.universe)

    def test_planted_cover_is_partition(self):
        sc = random_set_cover_instance(30, 12, planted_cover_size=4, rng=1)
        planted = [sc.subsets[f"S{i}"] for i in range(4)]
        union = set()
        total = 0
        for p in planted:
            union |= p
            total += len(p)
        assert union == set(sc.universe)
        assert total == len(sc.universe)  # disjoint

    def test_bad_parameters_rejected(self):
        with pytest.raises(InvalidInstanceError):
            random_set_cover_instance(0, 5)
        with pytest.raises(InvalidInstanceError):
            random_set_cover_instance(10, 3, planted_cover_size=5)
