"""Baseline schedulers."""

import pytest

from repro.errors import InfeasibleError
from repro.scheduling.baselines import always_on_schedule, sequential_cheapest_interval
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost, UnavailabilityCost
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import bursty_instance


def instance():
    jobs = [Job("a", {("p", 0)}), Job("b", {("p", 3)})]
    return ScheduleInstance(["p"], jobs, 6, AffineCost(2.0))


class TestAlwaysOn:
    def test_schedules_all(self):
        sched = always_on_schedule(instance())
        sched.validate(instance(), require_all=True)

    def test_cost_is_full_horizon(self):
        sched = always_on_schedule(instance())
        assert sched.cost(instance()) == 2.0 + 6.0

    def test_skips_unavailable_processors(self):
        jobs = [Job("a", {("p", 0), ("q", 0)})]
        model = UnavailabilityCost(AffineCost(1.0), blocked=[("p", 3)])
        inst = ScheduleInstance(["p", "q"], jobs, 6, model)
        sched = always_on_schedule(inst)
        assert all(iv.processor == "q" for iv in sched.intervals)

    def test_infeasible_when_capacity_missing(self):
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 0)})]
        inst = ScheduleInstance(["p"], jobs, 2, AffineCost(1.0))
        with pytest.raises(InfeasibleError):
            always_on_schedule(inst)


class TestSequential:
    def test_schedules_all(self):
        sched = sequential_cheapest_interval(instance())
        sched.validate(instance(), require_all=True)

    def test_reuses_bought_intervals(self):
        # With the covering interval as the only candidate, the second
        # job rides along at zero marginal cost instead of buying again.
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 0), ("p", 1)})]
        inst = ScheduleInstance(["p"], jobs, 2, AffineCost(10.0))
        pool = [AwakeInterval("p", 0, 1)]
        sched = sequential_cheapest_interval(inst, candidates=pool)
        assert len(sched.intervals) == 1

    def test_buys_cheapest_per_job(self):
        # Unit intervals are individually cheaper than the covering one,
        # so the myopic baseline buys two of them — exactly the failure
        # mode the submodular greedy avoids.
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 1)})]
        inst = ScheduleInstance(["p"], jobs, 2, AffineCost(10.0))
        sched = sequential_cheapest_interval(inst)
        assert len(sched.intervals) == 2
        assert sched.cost(inst) == 22.0

    def test_infeasible_raises(self):
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 0)})]
        inst = ScheduleInstance(["p"], jobs, 1, AffineCost(1.0))
        with pytest.raises(InfeasibleError):
            sequential_cheapest_interval(inst)

    def test_explicit_candidate_pool(self):
        inst = instance()
        pool = [AwakeInterval("p", 0, 0), AwakeInterval("p", 3, 3)]
        sched = sequential_cheapest_interval(inst, candidates=pool)
        assert set(sched.intervals) <= set(pool)


class TestBaselinesVsGreedy:
    @pytest.mark.parametrize("seed", range(4))
    def test_greedy_never_worse_than_always_on_on_bursty(self, seed):
        inst = bursty_instance(
            9, 3, 40, n_bursts=2, burst_width=4,
            cost_model=AffineCost(2.0), rng=seed,
        )
        greedy_cost = schedule_all_jobs(inst).cost
        baseline_cost = always_on_schedule(inst).cost(inst)
        assert greedy_cost <= baseline_cost + 1e-9
