"""Schedule feasibility validation and accounting."""

import pytest

from repro.errors import InvalidInstanceError
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost
from repro.scheduling.schedule import Schedule


def instance():
    jobs = [
        Job("a", {("p", 0), ("p", 2)}, value=3.0),
        Job("b", {("p", 1)}, value=1.0),
    ]
    return ScheduleInstance(["p"], jobs, 4, AffineCost(2.0))


def good_schedule():
    return Schedule(
        intervals=[AwakeInterval("p", 0, 2)],
        assignment={"a": ("p", 0), "b": ("p", 1)},
    )


class TestAccounting:
    def test_cost_sums_interval_costs(self):
        inst = instance()
        sched = Schedule(intervals=[AwakeInterval("p", 0, 1), AwakeInterval("p", 3, 3)])
        assert sched.cost(inst) == (2 + 2) + (2 + 1)

    def test_value_sums_scheduled_jobs(self):
        inst = instance()
        assert good_schedule().value(inst) == 4.0
        partial = Schedule(
            intervals=[AwakeInterval("p", 0, 0)], assignment={"a": ("p", 0)}
        )
        assert partial.value(inst) == 3.0

    def test_awake_pattern_merges(self):
        sched = Schedule(
            intervals=[AwakeInterval("p", 0, 2), AwakeInterval("p", 1, 3)]
        )
        assert sched.awake_pattern() == [AwakeInterval("p", 0, 3)]
        assert sched.awake_slot_count() == 4

    def test_empty_schedule(self):
        sched = Schedule()
        assert sched.awake_pattern() == []
        assert sched.cost(instance()) == 0.0

    def test_scheduled_jobs_sorted(self):
        assert good_schedule().scheduled_jobs() == ["a", "b"]


class TestValidation:
    def test_valid_schedule_passes(self):
        good_schedule().validate(instance(), require_all=True)

    def test_interval_past_horizon_rejected(self):
        sched = Schedule(intervals=[AwakeInterval("p", 0, 9)])
        with pytest.raises(InvalidInstanceError):
            sched.validate(instance())

    def test_unknown_job_rejected(self):
        sched = Schedule(
            intervals=[AwakeInterval("p", 0, 2)], assignment={"zz": ("p", 0)}
        )
        with pytest.raises(InvalidInstanceError):
            sched.validate(instance())

    def test_invalid_slot_for_job_rejected(self):
        sched = Schedule(
            intervals=[AwakeInterval("p", 0, 2)], assignment={"a": ("p", 1)}
        )  # ("p",1) not in a's T set
        with pytest.raises(InvalidInstanceError):
            sched.validate(instance())

    def test_sleeping_slot_rejected(self):
        sched = Schedule(
            intervals=[AwakeInterval("p", 0, 0)], assignment={"a": ("p", 2)}
        )
        with pytest.raises(InvalidInstanceError):
            sched.validate(instance())

    def test_double_booking_rejected(self):
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 0)})]
        inst = ScheduleInstance(["p"], jobs, 2, AffineCost(1.0))
        sched = Schedule(
            intervals=[AwakeInterval("p", 0, 0)],
            assignment={"a": ("p", 0), "b": ("p", 0)},
        )
        with pytest.raises(InvalidInstanceError):
            sched.validate(inst)

    def test_require_all_catches_missing_jobs(self):
        sched = Schedule(
            intervals=[AwakeInterval("p", 0, 2)], assignment={"a": ("p", 0)}
        )
        sched.validate(instance())  # partial is fine by default
        with pytest.raises(InvalidInstanceError):
            sched.validate(instance(), require_all=True)

    def test_summary_contains_counts(self):
        text = good_schedule().summary(instance())
        assert "2/2 jobs" in text
