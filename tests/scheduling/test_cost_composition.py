"""Composed cost models and solver parameter plumbing."""

import math

import pytest

from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import (
    PerProcessorRateCost,
    SuperlinearCost,
    TimeOfUseCost,
    UnavailabilityCost,
)
from repro.scheduling.prize_collecting import prize_collecting_schedule
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.energy import tou_price_trace


class TestComposedModels:
    def test_unavailability_over_tou(self):
        prices = tou_price_trace(12, base=1.0, peak_multiplier=2.0)
        model = UnavailabilityCost(TimeOfUseCost(prices, 0.5), [("p", 5)])
        assert math.isinf(model(AwakeInterval("p", 4, 6)))
        finite = model(AwakeInterval("p", 0, 2))
        assert finite == pytest.approx(0.5 + prices[0:3].sum())

    def test_unavailability_over_superlinear(self):
        model = UnavailabilityCost(SuperlinearCost(1.0, 2.0), [("q", 0)])
        assert math.isinf(model(AwakeInterval("q", 0, 0)))
        assert model(AwakeInterval("p", 0, 1)) == 1.0 + 4.0

    def test_solver_with_per_processor_and_outage(self):
        # p is cheap but down mid-horizon; q is expensive but reliable.
        base = PerProcessorRateCost(
            rates={"p": 1.0, "q": 3.0}, restart_costs={"p": 1.0, "q": 1.0}
        )
        model = UnavailabilityCost(base, [("p", t) for t in range(3, 9)])
        jobs = [
            Job("early", {("p", 1), ("q", 1)}),
            Job("mid", {("p", 5), ("q", 5)}),   # p is down: must use q
            Job("late", {("p", 10), ("q", 10)}),
        ]
        inst = ScheduleInstance(["p", "q"], jobs, 12, model)
        result = schedule_all_jobs(inst)
        result.schedule.validate(inst, require_all=True)
        assert result.schedule.assignment["mid"][0] == "q"

    def test_prize_collecting_with_tou(self):
        prices = tou_price_trace(12, base=1.0, peak_multiplier=5.0)
        model = TimeOfUseCost(prices, restart_cost=1.0)
        jobs = [
            Job(f"flex{i}", frozenset(("p", t) for t in range(12)), value=1.0)
            for i in range(4)
        ]
        inst = ScheduleInstance(["p"], jobs, 12, model)
        result = prize_collecting_schedule(inst, target_value=2.0, epsilon=0.25)
        # The cheap trough is at the start; scheduled slots should sit
        # in below-average-price hours.
        mean_price = prices.mean()
        for _, (proc, t) in result.schedule.assignment.items():
            assert prices[t] <= mean_price


class TestSolverParameterPlumbing:
    def test_explicit_candidates_restrict_solver(self):
        jobs = [Job("a", {("p", 0), ("p", 5)})]
        inst = ScheduleInstance(
            ["p"], jobs, 8,
            PerProcessorRateCost({"p": 1.0}, {"p": 1.0}),
        )
        pool = [AwakeInterval("p", 5, 5)]  # slot 0 not purchasable
        result = schedule_all_jobs(inst, candidates=pool)
        assert result.schedule.assignment["a"] == ("p", 5)

    def test_prize_collecting_explicit_candidates(self):
        jobs = [
            Job("a", {("p", 0)}, value=3.0),
            Job("b", {("p", 5)}, value=1.0),
        ]
        inst = ScheduleInstance(
            ["p"], jobs, 8, PerProcessorRateCost({"p": 1.0}, {"p": 1.0})
        )
        pool = [AwakeInterval("p", 5, 5)]  # only b's slot available
        result = prize_collecting_schedule(
            inst, target_value=1.0, epsilon=0.5, candidates=pool
        )
        assert set(result.schedule.assignment) == {"b"}
