"""Exact branch-and-bound reference solvers."""

import pytest

from repro.errors import InfeasibleError, InvalidInstanceError
from repro.scheduling.exact import (
    optimal_prize_collecting_bruteforce,
    optimal_schedule_bruteforce,
)
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost, TableCost


def hand_instance():
    """Hand-solvable: jobs at t=0 and t=4; candidates are the two unit
    intervals (cost 2 each) and one spanning interval (cost 6)."""
    jobs = [Job("a", {("p", 0)}), Job("b", {("p", 4)})]
    table = {
        AwakeInterval("p", 0, 0): 2.0,
        AwakeInterval("p", 4, 4): 2.0,
        AwakeInterval("p", 0, 4): 6.0,
    }
    return ScheduleInstance(
        ["p"], jobs, 5, TableCost(table), candidate_intervals=list(table)
    )


class TestScheduleAllExact:
    def test_hand_computed_optimum(self):
        result = optimal_schedule_bruteforce(hand_instance())
        assert result.cost == 4.0
        assert set(result.intervals) == {
            AwakeInterval("p", 0, 0),
            AwakeInterval("p", 4, 4),
        }

    def test_spanning_wins_when_units_expensive(self):
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 4)})]
        table = {
            AwakeInterval("p", 0, 0): 5.0,
            AwakeInterval("p", 4, 4): 5.0,
            AwakeInterval("p", 0, 4): 6.0,
        }
        inst = ScheduleInstance(
            ["p"], jobs, 5, TableCost(table), candidate_intervals=list(table)
        )
        result = optimal_schedule_bruteforce(inst)
        assert result.cost == 6.0

    def test_schedule_validated(self):
        result = optimal_schedule_bruteforce(hand_instance())
        result.schedule.validate(hand_instance(), require_all=True)

    def test_infeasible_raises(self):
        jobs = [Job("a", {("p", 0)}), Job("b", {("p", 0)})]
        inst = ScheduleInstance(["p"], jobs, 1, AffineCost(1.0))
        with pytest.raises(InfeasibleError):
            optimal_schedule_bruteforce(inst)

    def test_limit_guard(self):
        jobs = [Job(f"j{t}", {("p", t)}) for t in range(9)]
        inst = ScheduleInstance(["p"], jobs, 9, AffineCost(1.0))
        # 9 event points -> 45 candidate intervals > default limit.
        with pytest.raises(InvalidInstanceError):
            optimal_schedule_bruteforce(inst)
        # Raising the limit explicitly works.
        result = optimal_schedule_bruteforce(inst, limit=50)
        assert result.cost > 0

    def test_node_count_reported(self):
        result = optimal_schedule_bruteforce(hand_instance())
        assert result.nodes_explored >= 1


class TestPrizeCollectingExact:
    def instance(self):
        jobs = [
            Job("hi", {("p", 0)}, value=10.0),
            Job("lo", {("p", 4)}, value=1.0),
        ]
        table = {
            AwakeInterval("p", 0, 0): 3.0,
            AwakeInterval("p", 4, 4): 1.0,
        }
        return ScheduleInstance(
            ["p"], jobs, 5, TableCost(table), candidate_intervals=list(table)
        )

    def test_picks_cheapest_way_to_value(self):
        # Value target 1: the cheap interval with the low-value job wins.
        result = optimal_prize_collecting_bruteforce(self.instance(), 1.0)
        assert result.cost == 1.0

    def test_high_target_needs_expensive_interval(self):
        result = optimal_prize_collecting_bruteforce(self.instance(), 10.0)
        assert result.cost == 3.0

    def test_combined_target(self):
        result = optimal_prize_collecting_bruteforce(self.instance(), 11.0)
        assert result.cost == 4.0

    def test_zero_target_free(self):
        result = optimal_prize_collecting_bruteforce(self.instance(), 0.0)
        assert result.cost == 0.0
        assert result.intervals == []

    def test_unreachable_target_raises(self):
        with pytest.raises(InfeasibleError):
            optimal_prize_collecting_bruteforce(self.instance(), 99.0)
