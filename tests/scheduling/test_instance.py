"""ScheduleInstance and Job validation + derived structures."""

import pytest

from repro.errors import InvalidInstanceError
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost


def basic_instance():
    jobs = [
        Job("a", {("p", 0), ("q", 2)}, value=2.0),
        Job("b", {("p", 1)}, value=1.0),
    ]
    return ScheduleInstance(["p", "q"], jobs, 4, AffineCost(1.0))


class TestJob:
    def test_slots_frozen(self):
        job = Job("a", {("p", 0)})
        assert isinstance(job.slots, frozenset)

    def test_negative_value_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job("a", {("p", 0)}, value=-1.0)

    def test_malformed_slot_rejected(self):
        with pytest.raises(InvalidInstanceError):
            Job("a", {("p",)})
        with pytest.raises(InvalidInstanceError):
            Job("a", {("p", -3)})
        with pytest.raises(InvalidInstanceError):
            Job("a", {("p", 1.5)})

    def test_processors_and_times(self):
        job = Job("a", {("p", 0), ("p", 3), ("q", 2)})
        assert job.processors() == frozenset({"p", "q"})
        assert job.times_on("p") == [0, 3]
        assert job.times_on("zz") == []


class TestInstanceValidation:
    def test_valid_instance_passes(self):
        basic_instance()  # must not raise

    def test_nonpositive_horizon_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ScheduleInstance(["p"], [], 0, AffineCost(1.0))

    def test_duplicate_processors_rejected(self):
        with pytest.raises(InvalidInstanceError):
            ScheduleInstance(["p", "p"], [], 4, AffineCost(1.0))

    def test_duplicate_job_ids_rejected(self):
        jobs = [Job("a", {("p", 0)}), Job("a", {("p", 1)})]
        with pytest.raises(InvalidInstanceError):
            ScheduleInstance(["p"], jobs, 4, AffineCost(1.0))

    def test_unknown_processor_rejected(self):
        jobs = [Job("a", {("zz", 0)})]
        with pytest.raises(InvalidInstanceError):
            ScheduleInstance(["p"], jobs, 4, AffineCost(1.0))

    def test_slot_past_horizon_rejected(self):
        jobs = [Job("a", {("p", 9)})]
        with pytest.raises(InvalidInstanceError):
            ScheduleInstance(["p"], jobs, 4, AffineCost(1.0))

    def test_candidate_interval_validation(self):
        jobs = [Job("a", {("p", 0)})]
        with pytest.raises(InvalidInstanceError):
            ScheduleInstance(
                ["p"], jobs, 4, AffineCost(1.0),
                candidate_intervals=[AwakeInterval("zz", 0, 1)],
            )
        with pytest.raises(InvalidInstanceError):
            ScheduleInstance(
                ["p"], jobs, 4, AffineCost(1.0),
                candidate_intervals=[AwakeInterval("p", 0, 9)],
            )


class TestDerivedStructures:
    def test_all_slots(self):
        inst = basic_instance()
        assert inst.all_slots() == frozenset({("p", 0), ("q", 2), ("p", 1)})

    def test_job_values_and_total(self):
        inst = basic_instance()
        assert inst.job_values() == {"a": 2.0, "b": 1.0}
        assert inst.total_value() == 3.0

    def test_job_by_id(self):
        inst = basic_instance()
        assert inst.job_by_id("a").value == 2.0
        with pytest.raises(KeyError):
            inst.job_by_id("zzz")

    def test_bipartite_graph_structure(self):
        inst = basic_instance()
        graph = inst.bipartite_graph()
        assert graph.right == frozenset({"a", "b"})
        assert graph.left == inst.all_slots()
        assert graph.neighbors_of_right("a") == frozenset({("p", 0), ("q", 2)})

    def test_interval_slot_map_keeps_only_useful(self):
        inst = basic_instance()
        iv = AwakeInterval("p", 0, 3)
        mapped = inst.interval_slot_map([iv])
        assert mapped[iv] == frozenset({("p", 0), ("p", 1)})

    def test_explicit_candidates_returned(self):
        jobs = [Job("a", {("p", 0)})]
        pool = [AwakeInterval("p", 0, 0), AwakeInterval("p", 0, 2)]
        inst = ScheduleInstance(["p"], jobs, 4, AffineCost(1.0), candidate_intervals=pool)
        assert inst.candidates() == pool

    def test_n_jobs(self):
        assert basic_instance().n_jobs == 2
