"""Theorems 2.3.1 / 2.3.3: prize-collecting guarantees."""

import math

import pytest

from repro.errors import BudgetError, InfeasibleError
from repro.scheduling.exact import optimal_prize_collecting_bruteforce
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.power import AffineCost
from repro.scheduling.prize_collecting import (
    prize_collecting_exact_value,
    prize_collecting_schedule,
)
from repro.workloads.jobs import small_certifiable_instance


def contested_instance():
    """Three jobs contending for one slot each at different times; only
    two can be scheduled within the two cheap candidate windows."""
    jobs = [
        Job("gold", {("p", 0)}, value=10.0),
        Job("silver", {("p", 1)}, value=5.0),
        Job("bronze", {("p", 5)}, value=1.0),
    ]
    return ScheduleInstance(["p"], jobs, 6, AffineCost(3.0))


class TestBicriteria:
    def test_reaches_fraction_of_target(self):
        inst = contested_instance()
        result = prize_collecting_schedule(inst, target_value=15.0, epsilon=0.25)
        assert result.value >= 0.75 * 15.0 - 1e-9
        result.schedule.validate(inst)

    def test_prefers_valuable_jobs(self):
        inst = contested_instance()
        result = prize_collecting_schedule(inst, target_value=10.0, epsilon=0.1)
        assert "gold" in result.schedule.assignment

    def test_zero_target_returns_empty(self):
        inst = contested_instance()
        result = prize_collecting_schedule(inst, target_value=0.0, epsilon=0.5)
        assert result.value == 0.0
        assert result.cost == 0.0

    def test_unachievable_target_raises(self):
        inst = contested_instance()
        with pytest.raises(InfeasibleError):
            prize_collecting_schedule(inst, target_value=100.0, epsilon=0.25)

    def test_negative_target_rejected(self):
        with pytest.raises(BudgetError):
            prize_collecting_schedule(contested_instance(), -1.0, 0.25)

    def test_methods_agree(self):
        inst = contested_instance()
        lazy = prize_collecting_schedule(inst, 15.0, 0.25, method="lazy")
        plain = prize_collecting_schedule(inst, 15.0, 0.25, method="plain")
        assert lazy.value == pytest.approx(plain.value)
        assert lazy.cost == pytest.approx(plain.cost)

    @pytest.mark.parametrize("seed", range(8))
    def test_cost_bound_against_certified_optimum(self, seed):
        inst = small_certifiable_instance(
            n_jobs=6, n_processors=2, horizon=14, n_candidate_intervals=12,
            value_spread=4.0, rng=seed,
        )
        target = 0.5 * inst.total_value()
        epsilon = 0.25
        exact = optimal_prize_collecting_bruteforce(inst, target)
        result = prize_collecting_schedule(inst, target, epsilon)
        assert result.value >= (1 - epsilon) * target - 1e-9
        bound = 2.0 * max(1.0, math.log2(1.0 / epsilon))
        assert result.cost <= bound * exact.cost + 1e-9


class TestExactValue:
    def test_meets_threshold_exactly(self):
        inst = contested_instance()
        result = prize_collecting_exact_value(inst, target_value=15.0)
        assert result.value >= 15.0 - 1e-9
        result.schedule.validate(inst)

    def test_full_value_achievable(self):
        inst = contested_instance()
        result = prize_collecting_exact_value(inst, target_value=16.0)
        assert result.value >= 16.0 - 1e-9
        assert set(result.schedule.assignment) == {"gold", "silver", "bronze"}

    def test_zero_or_negative_target(self):
        inst = contested_instance()
        result = prize_collecting_exact_value(inst, target_value=0.0)
        assert result.value >= 0.0

    def test_unachievable_raises(self):
        with pytest.raises(InfeasibleError):
            prize_collecting_exact_value(contested_instance(), 100.0)

    def test_all_zero_values_with_positive_target_raises(self):
        jobs = [Job("a", {("p", 0)}, value=0.0)]
        inst = ScheduleInstance(["p"], jobs, 2, AffineCost(1.0))
        with pytest.raises(InfeasibleError):
            prize_collecting_exact_value(inst, 1.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_threshold_met_on_random_instances(self, seed):
        inst = small_certifiable_instance(
            n_jobs=5, n_processors=2, horizon=12, n_candidate_intervals=10,
            value_spread=3.0, rng=seed + 50,
        )
        target = 0.6 * inst.total_value()
        result = prize_collecting_exact_value(inst, target)
        assert result.value >= target - 1e-9
        result.schedule.validate(inst)

    @pytest.mark.parametrize("seed", range(4))
    def test_cost_bound_log_n_log_delta(self, seed):
        inst = small_certifiable_instance(
            n_jobs=5, n_processors=2, horizon=12, n_candidate_intervals=10,
            value_spread=4.0, rng=seed + 200,
        )
        target = 0.5 * inst.total_value()
        exact = optimal_prize_collecting_bruteforce(inst, target)
        result = prize_collecting_exact_value(inst, target)
        values = [j.value for j in inst.jobs if j.value > 0]
        delta = max(values) / min(values)
        n = inst.n_jobs
        # O((log n + log delta) B) with the lemma's constant 2, plus the
        # single top-up interval whose cost is at most B.
        bound = 2.0 * (math.log2(n * delta / min(1.0, 1.0)) + 1) + 1
        assert result.cost <= bound * exact.cost * 2 + 1e-9  # generous constant
