"""Property-based tests over random scheduling instances (hypothesis).

* solver output is always a feasible full schedule;
* the exact reference never exceeds the greedy's cost;
* the lower-bound module never exceeds the exact optimum;
* merging bought intervals never increases the affine awake-slot count.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.analysis.bounds import schedule_cost_lower_bound
from repro.scheduling.exact import optimal_schedule_bruteforce
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval, merge_intervals
from repro.scheduling.power import AffineCost, TableCost
from repro.scheduling.solver import schedule_all_jobs


@st.composite
def table_instances(draw, max_intervals=8, max_jobs=5, horizon=10):
    """Instance with an explicit priced interval pool; jobs live inside it."""
    n_ivs = draw(st.integers(min_value=1, max_value=max_intervals))
    procs = ["p0", "p1"]
    table = {}
    for _ in range(n_ivs):
        proc = draw(st.sampled_from(procs))
        start = draw(st.integers(min_value=0, max_value=horizon - 2))
        end = draw(st.integers(min_value=start, max_value=min(horizon - 1, start + 3)))
        iv = AwakeInterval(proc, start, end)
        table[iv] = float(draw(st.integers(min_value=1, max_value=9)))
    slots = sorted({s for iv in table for s in iv.slots()}, key=repr)
    n_jobs = draw(st.integers(min_value=1, max_value=min(max_jobs, len(slots))))
    jobs = []
    for j in range(n_jobs):
        k = draw(st.integers(min_value=1, max_value=min(3, len(slots))))
        idx = draw(
            st.lists(
                st.integers(min_value=0, max_value=len(slots) - 1),
                min_size=k, max_size=k, unique=True,
            )
        )
        jobs.append(Job(f"j{j}", frozenset(slots[i] for i in idx)))
    inst = ScheduleInstance(
        procs, jobs, horizon, TableCost(table), candidate_intervals=list(table)
    )
    return inst


def solvable(inst):
    from repro.matching.hopcroft_karp import hopcroft_karp

    return len(hopcroft_karp(inst.bipartite_graph())) == inst.n_jobs


@given(table_instances())
@settings(max_examples=80, deadline=None)
def test_solver_output_always_feasible(inst):
    if not solvable(inst):
        return
    result = schedule_all_jobs(inst)
    result.schedule.validate(inst, require_all=True)


@given(table_instances(max_intervals=7, max_jobs=4))
@settings(max_examples=60, deadline=None)
def test_exact_never_beaten_and_bound_valid(inst):
    if not solvable(inst):
        return
    greedy = schedule_all_jobs(inst).cost
    exact = optimal_schedule_bruteforce(inst).cost
    assert exact <= greedy + 1e-9
    assert schedule_cost_lower_bound(inst) <= exact + 1e-9


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=12),
            st.integers(min_value=0, max_value=5),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_merge_intervals_never_grows_awake_time(spans):
    intervals = [AwakeInterval("p", s, s + length) for s, length in spans]
    merged = merge_intervals(intervals)
    raw_slots = set()
    for iv in intervals:
        raw_slots |= iv.slots()
    merged_slots = set()
    for iv in merged:
        merged_slots |= iv.slots()
    # Merging preserves the awake set exactly...
    assert merged_slots == raw_slots
    # ...with disjoint runs.
    for i, a in enumerate(merged):
        for b in merged[i + 1 :]:
            assert not a.overlaps(b)
    # And under the affine model, paying per merged run is never worse.
    model = AffineCost(restart_cost=2.0)
    assert sum(model(iv) for iv in merged) <= sum(model(iv) for iv in intervals) + 1e-9


@given(table_instances(max_intervals=7, max_jobs=4))
@settings(max_examples=40, deadline=None)
def test_all_methods_realise_the_guarantee(inst):
    # Engines may diverge on exact ratio ties, but each must stay within
    # the Lemma 2.1.2 bound of the certified optimum.
    import math

    if not solvable(inst):
        return
    exact = optimal_schedule_bruteforce(inst).cost
    bound = 2.0 * math.log2(inst.n_jobs + 1) * exact + 1e-9
    for m in ("incremental", "lazy", "plain"):
        result = schedule_all_jobs(inst, method=m)
        result.schedule.validate(inst, require_all=True)
        assert result.cost <= bound
