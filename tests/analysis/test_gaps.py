"""Gap statistics."""

import pytest

from repro.analysis.gaps import gap_statistics
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost
from repro.scheduling.schedule import Schedule
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import random_multi_interval_instance


def instance():
    jobs = [Job("a", {("p", 0)}), Job("b", {("p", 5)}), Job("c", {("q", 2)})]
    return ScheduleInstance(["p", "q"], jobs, 8, AffineCost(1.0))


class TestGapStatistics:
    def test_counts_gaps_between_runs(self):
        sched = Schedule(
            intervals=[
                AwakeInterval("p", 0, 0),
                AwakeInterval("p", 5, 5),
                AwakeInterval("q", 2, 2),
            ],
            assignment={"a": ("p", 0), "b": ("p", 5), "c": ("q", 2)},
        )
        report = gap_statistics(sched, instance())
        assert report.awake_runs == 3
        assert report.gaps == 1          # only between p's two runs
        assert report.gap_slots == 4     # slots 1..4
        assert report.busy_slots == 3
        assert report.idle_awake_slots == 0
        assert report.utilization == 1.0

    def test_idle_awake_counted(self):
        sched = Schedule(
            intervals=[AwakeInterval("p", 0, 5)],
            assignment={"a": ("p", 0), "b": ("p", 5)},
        )
        report = gap_statistics(sched, instance())
        assert report.awake_runs == 1
        assert report.gaps == 0
        assert report.idle_awake_slots == 4
        assert report.utilization == pytest.approx(2 / 6)

    def test_leading_trailing_sleep_not_gaps(self):
        sched = Schedule(
            intervals=[AwakeInterval("p", 3, 4)],
            assignment={},
        )
        report = gap_statistics(sched, instance())
        assert report.gaps == 0

    def test_empty_schedule(self):
        report = gap_statistics(Schedule(), instance())
        assert report.awake_runs == 0
        assert report.utilization == 1.0

    def test_merged_runs_counted_once(self):
        sched = Schedule(
            intervals=[AwakeInterval("p", 0, 2), AwakeInterval("p", 2, 4)],
            assignment={},
        )
        report = gap_statistics(sched, instance())
        assert report.awake_runs == 1
        assert report.awake_slots == 5

    def test_restart_cost_drives_gap_count(self):
        # High restart cost should produce fewer gaps than low restart
        # cost on the same bursty workload.
        inst_sparse = random_multi_interval_instance(
            10, 1, 40, windows_per_job=1, window_length=2,
            cost_model=AffineCost(0.5), rng=5,
        )
        inst_dense = ScheduleInstance(
            inst_sparse.processors, inst_sparse.jobs, inst_sparse.horizon,
            AffineCost(50.0),
        )
        low = gap_statistics(schedule_all_jobs(inst_sparse).schedule, inst_sparse)
        high = gap_statistics(schedule_all_jobs(inst_dense).schedule, inst_dense)
        assert high.gaps <= low.gaps
