"""Trial statistics."""

import pytest

from repro.analysis.stats import summarize


class TestSummarize:
    def test_single_value(self):
        s = summarize([3.0])
        assert s.mean == 3.0
        assert s.std == 0.0
        assert s.ci95_low == s.ci95_high == 3.0

    def test_basic_moments(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.count == 4

    def test_ci_contains_mean(self):
        s = summarize(range(100))
        assert s.ci95_low <= s.mean <= s.ci95_high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_accepts_generators(self):
        s = summarize(float(x) for x in range(5))
        assert s.count == 5

    def test_str_is_informative(self):
        text = str(summarize([1.0, 2.0]))
        assert "n=2" in text
