"""Lower bounds: validity against certified optima."""

import pytest

from repro.analysis.bounds import (
    capacity_lower_bound,
    job_cover_lower_bound,
    schedule_cost_lower_bound,
)
from repro.errors import InfeasibleError
from repro.scheduling.exact import optimal_schedule_bruteforce
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost, TableCost
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import small_certifiable_instance


class TestValidity:
    @pytest.mark.parametrize("seed", range(10))
    def test_bounds_below_certified_optimum(self, seed):
        inst = small_certifiable_instance(6, 2, 14, 12, rng=seed)
        opt = optimal_schedule_bruteforce(inst).cost
        assert job_cover_lower_bound(inst) <= opt + 1e-9
        assert capacity_lower_bound(inst) <= opt + 1e-9
        assert schedule_cost_lower_bound(inst) <= opt + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_combined_bound_is_max(self, seed):
        inst = small_certifiable_instance(5, 2, 12, 10, rng=seed + 20)
        combined = schedule_cost_lower_bound(inst)
        assert combined == pytest.approx(
            max(job_cover_lower_bound(inst), capacity_lower_bound(inst))
        )

    def test_tight_on_disjoint_unit_jobs(self):
        # Each job needs its own dedicated interval: bound == OPT.
        jobs = [Job(f"j{i}", {("p", 4 * i)}) for i in range(3)]
        table = {AwakeInterval("p", 4 * i, 4 * i): 2.0 for i in range(3)}
        inst = ScheduleInstance(
            ["p"], jobs, 12, TableCost(table), candidate_intervals=list(table)
        )
        opt = optimal_schedule_bruteforce(inst).cost
        assert job_cover_lower_bound(inst) == pytest.approx(opt)

    def test_positive_on_nontrivial_instances(self):
        inst = small_certifiable_instance(5, 2, 12, 10, rng=99)
        assert schedule_cost_lower_bound(inst) > 0.0


class TestErrors:
    def test_uncoverable_job_raises(self):
        jobs = [Job("a", {("p", 0)})]
        inst = ScheduleInstance(
            ["p"], jobs, 2, TableCost({}),
            candidate_intervals=[AwakeInterval("p", 0, 0)],
        )
        with pytest.raises(InfeasibleError):
            job_cover_lower_bound(inst)
        with pytest.raises(InfeasibleError):
            capacity_lower_bound(inst)


class TestUseAsRatioFloor:
    @pytest.mark.parametrize("seed", range(4))
    def test_ratio_against_bound_exceeds_ratio_against_opt(self, seed):
        # Using the bound in place of OPT can only inflate the measured
        # ratio (conservative direction) — the property experiments rely on.
        inst = small_certifiable_instance(6, 2, 14, 12, rng=seed + 50)
        opt = optimal_schedule_bruteforce(inst).cost
        bound = schedule_cost_lower_bound(inst)
        greedy = schedule_all_jobs(inst).cost
        assert greedy / bound >= greedy / opt - 1e-12

    def test_scales_to_larger_instances(self):
        from repro.workloads.jobs import random_multi_interval_instance

        inst = random_multi_interval_instance(30, 3, 40, rng=3)
        bound = schedule_cost_lower_bound(inst)
        greedy = schedule_all_jobs(inst).cost
        assert 0.0 < bound <= greedy + 1e-9
