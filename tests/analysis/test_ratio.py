"""Optimum certification and the trial harness."""

import pytest

from repro.analysis.ratio import (
    competitive_trials,
    offline_greedy_cardinality,
    offline_optimum_cardinality,
)
from repro.core.functions import AdditiveFunction, CoverageFunction


def coverage():
    return CoverageFunction(
        {"a": {1, 2, 3}, "b": {3, 4}, "c": {5}, "d": {1, 2, 3, 4}}
    )


class TestOfflineGreedy:
    def test_additive_picks_top_k(self):
        fn = AdditiveFunction({"a": 3.0, "b": 1.0, "c": 2.0})
        chosen, value = offline_greedy_cardinality(fn, 2)
        assert chosen == frozenset({"a", "c"})
        assert value == 5.0

    def test_k_zero(self):
        chosen, value = offline_greedy_cardinality(coverage(), 0)
        assert chosen == frozenset()
        assert value == 0.0

    def test_stops_when_no_gain(self):
        fn = AdditiveFunction({"a": 1.0, "b": 0.0})
        chosen, _ = offline_greedy_cardinality(fn, 5)
        assert chosen == frozenset({"a"})

    def test_coverage_guarantee(self):
        # Greedy >= (1 - 1/e) OPT; here it is exactly optimal.
        _, value = offline_greedy_cardinality(coverage(), 2)
        opt, exact = offline_optimum_cardinality(coverage(), 2)
        assert exact
        assert value >= (1 - 1 / 2.7182818) * opt


class TestOfflineOptimum:
    def test_exhaustive_exact(self):
        opt, exact = offline_optimum_cardinality(coverage(), 2)
        assert exact
        assert opt == 5.0  # d covers {1,2,3,4}, c adds {5}

    def test_k_capped_at_ground(self):
        opt, exact = offline_optimum_cardinality(coverage(), 99)
        assert exact
        assert opt == 5.0

    def test_greedy_fallback(self):
        fn = AdditiveFunction({f"e{i}": float(i) for i in range(40)})
        opt, exact = offline_optimum_cardinality(fn, 10, exhaustive_budget=10)
        assert not exact
        assert opt == sum(range(30, 40))  # greedy is exact for additive


class TestCompetitiveTrials:
    def test_ratio_statistics(self):
        stats = competitive_trials(lambda rng: (1.0, 2.0), trials=10, rng=0)
        assert stats.mean == pytest.approx(0.5)
        assert stats.count == 10

    def test_zero_benchmark_handling(self):
        stats = competitive_trials(lambda rng: (0.0, 0.0), trials=5, rng=0)
        assert stats.mean == 1.0
        stats2 = competitive_trials(lambda rng: (1.0, 0.0), trials=5, rng=0)
        assert stats2.mean == 0.0

    def test_rng_children_vary(self):
        seen = []
        competitive_trials(
            lambda rng: (seen.append(float(rng.random())) or 1.0, 1.0),
            trials=8,
            rng=1,
        )
        assert len(set(seen)) == 8

    def test_bad_trials_rejected(self):
        with pytest.raises(ValueError):
            competitive_trials(lambda rng: (1.0, 1.0), trials=0)

    def test_determinism(self):
        f = lambda rng: (float(rng.random()), 1.0)
        a = competitive_trials(f, trials=6, rng=9)
        b = competitive_trials(f, trials=6, rng=9)
        assert a.mean == b.mean
