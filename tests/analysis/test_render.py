"""ASCII schedule rendering."""

from repro.analysis.render import render_schedule
from repro.scheduling.instance import Job, ScheduleInstance
from repro.scheduling.intervals import AwakeInterval
from repro.scheduling.power import AffineCost
from repro.scheduling.schedule import Schedule
from repro.scheduling.solver import schedule_all_jobs
from repro.workloads.jobs import random_multi_interval_instance


def tiny():
    jobs = [Job("alpha", {("p", 0)}), Job("beta", {("p", 2)})]
    inst = ScheduleInstance(["p"], jobs, 4, AffineCost(1.0))
    sched = Schedule(
        intervals=[AwakeInterval("p", 0, 2)],
        assignment={"alpha": ("p", 0), "beta": ("p", 2)},
    )
    return inst, sched


class TestRender:
    def test_symbols(self):
        inst, sched = tiny()
        out = render_schedule(sched, inst)
        row = [l for l in out.splitlines() if l.strip().startswith("p ")][0]
        cells = row.split()[-1]
        # slot 0: job a; slot 1: awake idle; slot 2: job b; slot 3: asleep.
        assert cells == "a#b."

    def test_legend_lists_jobs(self):
        inst, sched = tiny()
        out = render_schedule(sched, inst)
        assert "a=alpha" in out
        assert "b=beta" in out

    def test_footer_stats(self):
        inst, sched = tiny()
        out = render_schedule(sched, inst)
        assert "jobs=2/2" in out
        assert "awake_slots=3" in out

    def test_one_row_per_processor(self):
        inst = random_multi_interval_instance(8, 3, 15, rng=0)
        sched = schedule_all_jobs(inst).schedule
        out = render_schedule(sched, inst)
        body = [l for l in out.splitlines()[1:] if not l.startswith(("legend", "cost"))]
        assert len(body) == 3

    def test_empty_schedule(self):
        inst = ScheduleInstance(["p"], [], 3, AffineCost(1.0))
        out = render_schedule(Schedule(), inst)
        assert "jobs=0/0" in out
        assert "..." in out

    def test_every_assigned_job_visible(self):
        inst = random_multi_interval_instance(10, 2, 18, rng=1)
        sched = schedule_all_jobs(inst).schedule
        out = render_schedule(sched, inst)
        grid = "".join(l.split()[-1] for l in out.splitlines()[1:3])
        letters = [c for c in grid if c.isalpha()]
        assert len(letters) == len(sched.assignment)
