"""ASCII table formatter."""

import pytest

from repro.analysis.tables import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "x"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines if "|" in line)

    def test_title(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159265]])
        assert "3.142" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out
