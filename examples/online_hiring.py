#!/usr/bin/env python
"""Online hiring with submodular utility — the Chapter 3 algorithms live.

A company interviews 120 candidates in random order and must decide on
the spot.  The team's utility is *skill coverage* (monotone submodular):
hiring two people with the same skills adds little.  We run

  * Algorithm 1 (monotone submodular secretary, Theorem 3.1.1),
  * Algorithm 3 with a department-quota partition matroid (Thm 3.1.2),
  * the bottleneck rule of Section 3.6 (group speed = slowest member),

and compare each against its offline benchmark over repeated trials.

Run:  python examples/online_hiring.py
"""

import math

from repro.analysis.ratio import offline_optimum_cardinality
from repro.analysis.stats import summarize
from repro.analysis.tables import format_table
from repro.core.functions import AdditiveFunction
from repro.matroids import PartitionMatroid
from repro.rng import as_generator, spawn
from repro.secretary import (
    SecretaryStream,
    monotone_submodular_secretary,
)
from repro.secretary.bottleneck import bottleneck_secretary
from repro.secretary.matroid_secretary import matroid_submodular_secretary
from repro.workloads.secretary_streams import coverage_utility

N, K, TRIALS = 120, 6, 40


def main() -> None:
    master = as_generator(2010)
    rows = []

    # --- Algorithm 1: hire up to K maximizing skill coverage ---------
    ratios = []
    for child in spawn(master, TRIALS):
        skills = coverage_utility(N, 30, skills_per_secretary=5, rng=child)
        opt, _ = offline_optimum_cardinality(skills, K, exhaustive_budget=0)
        stream = SecretaryStream(skills, rng=child)
        hired = monotone_submodular_secretary(stream, K)
        ratios.append(skills.value(hired.selected) / opt if opt else 1.0)
    rows.append(["Algorithm 1 (coverage, k=6)", summarize(ratios).mean,
                 f"floor {1/(7*math.e):.3f}"])

    # --- Algorithm 3: at most 2 hires per department ------------------
    ratios = []
    for child in spawn(master, TRIALS):
        skills = coverage_utility(N, 30, skills_per_secretary=5, rng=child)
        blocks = {e: hash(e) % 3 for e in skills.ground_set}  # 3 departments
        matroid = PartitionMatroid(blocks, {b: 2 for b in range(3)})
        opt, _ = offline_optimum_cardinality(skills, 6, exhaustive_budget=0)
        stream = SecretaryStream(skills, rng=child)
        hired = matroid_submodular_secretary(stream, [matroid], rng=child)
        assert matroid.is_independent(hired.selected)
        ratios.append(skills.value(hired.selected) / opt if opt else 1.0)
    rows.append(["Algorithm 3 (dept quotas)", summarize(ratios).mean, "O(log^2 r)"])

    # --- bottleneck: hire the k fastest (group speed = min) -----------
    hits = 0
    for child in spawn(master, TRIALS * 10):
        speeds = {f"s{i}": float(i * i + 1) for i in range(40)}
        fn = AdditiveFunction(speeds)
        stream = SecretaryStream(fn, rng=child)
        result = bottleneck_secretary(stream, speeds, 2)
        hits += result.hired_top_k
    rows.append(["bottleneck k=2: P[top-2 hired]", hits / (TRIALS * 10),
                 f"floor {math.exp(-4):.4f}"])

    print(format_table(["strategy", "measured", "paper bound"], rows,
                       title="Online hiring, 40-400 trials per row"))


if __name__ == "__main__":
    main()
