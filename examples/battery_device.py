#!/usr/bin/env python
"""Battery-powered device: wake-up scheduling around radio blackouts.

Single processor (the device's radio+CPU), jobs are telemetry uploads
with a few permissible transmission windows each (multi-interval!), a
restart cost for waking from deep sleep, and a maintenance blackout
during which the radio is unavailable (infinite cost — the paper's
representation of unavailability).  We certify the greedy against the
exact branch-and-bound optimum and show the superlinear "fan" variant
changing the awake-run structure.

Run:  python examples/battery_device.py
"""

from repro import (
    AffineCost,
    Job,
    ScheduleInstance,
    SuperlinearCost,
    UnavailabilityCost,
    optimal_schedule_bruteforce,
    schedule_all_jobs,
)


def build_jobs():
    # Uploads with 2-3 valid transmission slots each ("the satellite is
    # overhead", "wifi is in range", ...).
    return [
        Job("telemetry-a", {("dev", 1), ("dev", 2), ("dev", 14)}),
        Job("telemetry-b", {("dev", 2), ("dev", 3)}),
        Job("firmware-ack", {("dev", 3), ("dev", 15)}),
        Job("log-sync", {("dev", 13), ("dev", 14)}),
        Job("heartbeat", {("dev", 15), ("dev", 16)}),
    ]


def main() -> None:
    horizon = 18
    blackout = [("dev", t) for t in range(6, 12)]  # radio maintenance

    # --- classical affine energy, with the blackout -----------------
    model = UnavailabilityCost(AffineCost(restart_cost=4.0), blackout)
    instance = ScheduleInstance(["dev"], build_jobs(), horizon, model)

    greedy = schedule_all_jobs(instance)
    exact = optimal_schedule_bruteforce(instance)
    print("affine + blackout:")
    print("  greedy :", greedy.schedule.summary(instance))
    print("  exact  : cost", exact.cost)
    print(f"  ratio  : {greedy.cost / exact.cost:.3f} "
          f"(proven bound {greedy.approximation_bound():.2f})")
    for iv in greedy.schedule.awake_pattern():
        print(f"  awake [{iv.start}, {iv.end}]")
    assert all(
        not (6 <= t <= 11) for iv in greedy.schedule.awake_pattern()
        for t in range(iv.start, iv.end + 1)
    ), "greedy must never be awake during the blackout"

    # --- superlinear fan cost: long runs get split -------------------
    fan = UnavailabilityCost(SuperlinearCost(restart_cost=1.0, exponent=2.0), blackout)
    fan_instance = ScheduleInstance(["dev"], build_jobs(), horizon, fan)
    fan_result = schedule_all_jobs(fan_instance)
    print("\nsuperlinear (fan) cost:")
    print("  greedy :", fan_result.schedule.summary(fan_instance))
    for iv in fan_result.schedule.awake_pattern():
        print(f"  awake [{iv.start}, {iv.end}]")
    # Quadratic growth punishes long awake stretches, so runs are short.
    assert max(iv.length for iv in fan_result.schedule.awake_pattern()) <= 4


if __name__ == "__main__":
    main()
