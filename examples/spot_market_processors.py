#!/usr/bin/env python
"""Spot-market processor rental — the paper's online setting, end to end.

"Assume that you have a set of tasks to do, and the processors arrive
one by one. You want to pick a number of processors (according to your
budget) to do the tasks." (Chapter 3 introduction.)

Spot VMs appear in random order; each offers an awake window; you may
rent at most k and decisions are irrevocable.  The utility of a rented
fleet is the number of jobs it can schedule — the Section 2.2 matching
function, which is submodular — so Algorithm 1 gives a constant
competitive ratio.  We measure it against the hindsight-optimal fleet.

Run:  python examples/spot_market_processors.py
"""

import math

from repro.analysis.stats import summarize
from repro.rng import as_generator, spawn
from repro.scheduling.instance import Job
from repro.scheduling.intervals import AwakeInterval
from repro.secretary.online_scheduling import (
    ProcessorMarket,
    ProcessorUtility,
    online_processor_selection,
)

N_PROCS, N_JOBS, HORIZON, K, TRIALS = 24, 18, 12, 5, 30


def build_market(rng):
    gen = as_generator(rng)
    offers = {}
    for i in range(N_PROCS):
        start = int(gen.integers(HORIZON - 3))
        offers[f"vm{i}"] = (AwakeInterval(f"vm{i}", start, start + 2),)
    jobs = []
    for j in range(N_JOBS):
        slots = set()
        for _ in range(3):
            p = f"vm{int(gen.integers(N_PROCS))}"
            iv = offers[p][0]
            slots.add((p, int(gen.integers(iv.start, iv.end + 1))))
        jobs.append(Job(f"job{j}", frozenset(slots)))
    return ProcessorMarket(offers=offers, jobs=tuple(jobs))


def hindsight_best(market, k):
    """Offline greedy fleet (the benchmark the online run is scored by)."""
    util = ProcessorUtility(market)
    chosen, value = set(), 0.0
    for _ in range(k):
        best, gain = None, 0.0
        for p in util.ground_set - chosen:
            g = util.value(frozenset(chosen | {p})) - value
            if g > gain:
                best, gain = p, g
        if best is None:
            break
        chosen.add(best)
        value = util.value(frozenset(chosen))
    return value


def main() -> None:
    master = as_generator(1234)
    ratios = []
    for child in spawn(master, TRIALS):
        market = build_market(child)
        opt = hindsight_best(market, K)
        result = online_processor_selection(market, K, rng=child)
        ratios.append(result.utility / opt if opt else 1.0)
    stats = summarize(ratios)
    print(f"{TRIALS} random spot markets, rent up to k={K} of {N_PROCS} VMs:")
    print(f"  jobs scheduled online / hindsight best: {stats}")
    print(f"  Theorem 3.1.1 floor: 1/(7e) = {1 / (7 * math.e):.4f}")
    assert stats.mean >= 1 / (7 * math.e)

    # One concrete run, narrated.
    market = build_market(as_generator(7))
    result = online_processor_selection(market, K, rng=8)
    print(f"\nexample run: rented {sorted(map(str, result.hired))}")
    print(f"  scheduled {len(result.scheduled_jobs)}/{N_JOBS} jobs")


if __name__ == "__main__":
    main()
