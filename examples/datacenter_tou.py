#!/usr/bin/env python
"""Datacenter batch scheduling under time-of-use electricity tariffs.

The paper's motivation 2: "we optimize energy cost instead of actual
energy, which varies substantially in energy markets over the course of
a day."  We build a 24-hour price curve (cheap night trough, expensive
afternoon peak), a fleet of flexible batch jobs plus a few deadline-
pinned interactive jobs, and compare:

  * the submodular greedy (Theorem 2.2.1),
  * the always-on baseline (no power management),
  * the per-job myopic baseline.

Run:  python examples/datacenter_tou.py
"""

from repro import Job, ScheduleInstance, TimeOfUseCost, schedule_all_jobs
from repro.analysis.tables import format_table
from repro.rng import as_generator
from repro.scheduling.baselines import always_on_schedule, sequential_cheapest_interval
from repro.workloads.energy import tou_price_trace


def build_instance(seed: int = 7):
    horizon = 24
    machines = ["m0", "m1", "m2"]
    prices = tou_price_trace(horizon, base=1.0, peak_multiplier=4.0, noise=0.1, rng=seed)
    gen = as_generator(seed + 1)

    jobs = []
    # 10 flexible batch jobs: any machine, any hour.
    for i in range(10):
        slots = frozenset((m, t) for m in machines for t in range(horizon))
        jobs.append(Job(f"batch{i}", slots))
    # 5 interactive jobs pinned to business hours on one machine each.
    for i in range(5):
        m = machines[int(gen.integers(len(machines)))]
        t0 = int(gen.integers(9, 15))
        jobs.append(Job(f"interactive{i}", frozenset({(m, t0), (m, t0 + 1)})))

    model = TimeOfUseCost(prices, restart_cost=1.0)
    return ScheduleInstance(machines, jobs, horizon, model), prices


def main() -> None:
    instance, prices = build_instance()
    print(f"24h price curve: min {prices.min():.2f}, max {prices.max():.2f}\n")

    greedy = schedule_all_jobs(instance)
    always = always_on_schedule(instance)
    myopic = sequential_cheapest_interval(instance)

    rows = [
        ["submodular greedy", greedy.cost, len(greedy.schedule.awake_pattern())],
        ["always-on", always.cost(instance), len(always.awake_pattern())],
        ["per-job myopic", myopic.cost(instance), len(myopic.awake_pattern())],
    ]
    print(format_table(["scheduler", "energy cost", "awake runs"], rows))

    # Where did the flexible work land?
    batch_hours = sorted(
        t for j, (_, t) in greedy.schedule.assignment.items() if str(j).startswith("batch")
    )
    print(f"\nbatch jobs scheduled at hours: {batch_hours}")
    cheap_cutoff = float(prices.mean())
    in_trough = sum(1 for t in batch_hours if prices[t] <= cheap_cutoff)
    print(f"{in_trough}/10 batch jobs in below-average-price hours")
    assert greedy.cost <= always.cost(instance)


if __name__ == "__main__":
    main()
