#!/usr/bin/env python
"""Quickstart: schedule jobs to minimize power with the public API.

Covers the two headline solvers in ~40 lines:

  1. schedule-all  (Theorem 2.2.1) — every job runs, O(log n)-approx cost;
  2. prize-collecting (Theorem 2.3.1) — hit a value target cheaply.

Run:  python examples/quickstart.py
"""

from repro import (
    AffineCost,
    Job,
    ScheduleInstance,
    prize_collecting_schedule,
    schedule_all_jobs,
)


def main() -> None:
    # Two processors, 12 time slots, classical energy model: each awake
    # interval costs a restart of 3 plus its length.
    processors = ["cpu0", "cpu1"]
    horizon = 12
    cost_model = AffineCost(restart_cost=3.0)

    # Multi-interval jobs: each lists the (processor, time) pairs it can
    # use — different processors may offer different windows.
    jobs = [
        Job("compile", {("cpu0", 0), ("cpu0", 1), ("cpu1", 5)}, value=5.0),
        Job("test", {("cpu0", 1), ("cpu0", 2)}, value=3.0),
        Job("deploy", {("cpu1", 5), ("cpu1", 6)}, value=4.0),
        Job("backup", {("cpu0", 10), ("cpu1", 10)}, value=1.0),
    ]
    instance = ScheduleInstance(processors, jobs, horizon, cost_model)

    # --- 1. Schedule every job -----------------------------------------
    result = schedule_all_jobs(instance)
    print("schedule-all:", result.schedule.summary(instance))
    for job_id, (proc, t) in sorted(result.schedule.assignment.items()):
        print(f"  {job_id:>8} -> {proc} @ t={t}")
    print(f"  awake runs: {result.schedule.awake_pattern()}")
    print(f"  cost {result.cost:.1f}, proven bound {result.approximation_bound():.2f}x OPT")

    # --- 2. Prize-collecting: reach value 9 cheaply ---------------------
    pc = prize_collecting_schedule(instance, target_value=9.0, epsilon=0.25)
    print("\nprize-collecting (Z=9, eps=0.25):", pc.schedule.summary(instance))
    print(f"  scheduled: {pc.schedule.scheduled_jobs()}")
    print(f"  value {pc.value:.1f} >= (1-eps)Z = {0.75 * 9.0:.2f}, cost {pc.cost:.1f}")


if __name__ == "__main__":
    main()
